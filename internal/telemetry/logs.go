package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// LogLine is one unstructured text log record from the LogAnalytics
// workload (paper Listing 3 / Helios scenario). Raw holds the full line;
// WireSize of the containing Record equals len(Raw).
type LogLine struct {
	Timestamp int64
	Raw       string
}

// NewLogRecord wraps a log line in a stream Record sized to the text.
func NewLogRecord(ts int64, raw string) Record {
	return Record{Time: ts, WireSize: len(raw), Data: &LogLine{Timestamp: ts, Raw: raw}}
}

// JobStats is the parsed representation of a LogAnalytics line: one
// (tenant, statistic) observation. The query buckets Stat with
// width_bucket(stat, 0, 100, 10) and counts per
// (tenant, statName, bucket).
type JobStats struct {
	Timestamp int64
	Tenant    string
	StatName  string // "job running time" | "cpu util" | "memory util"
	Stat      float64
	Bucket    int
}

// JobStatsWireSize approximates the serialized size of a parsed JobStats
// record: tenant + stat name strings plus numeric fields and envelope.
func (j *JobStats) JobStatsWireSize() int {
	return len(j.Tenant) + len(j.StatName) + 8 + 8 + 4 + 16
}

// ParseJobStats parses a LogAnalytics line of the form produced by
// workload.LogGen, e.g.
//
//	tenant name=alpha-07 job running time=532 cpu util=74.2 memory util=31.0
//
// The line must already be trimmed/lowercased (the query's first Map).
// It returns one JobStats per statistic present on the line.
func ParseJobStats(ts int64, line string) ([]JobStats, error) {
	fields := strings.Split(line, ",")
	var tenant string
	type kv struct {
		name string
		val  float64
	}
	var stats []kv
	for _, f := range fields {
		eq := strings.IndexByte(f, '=')
		if eq < 0 {
			continue
		}
		key := strings.TrimSpace(f[:eq])
		val := strings.TrimSpace(f[eq+1:])
		if key == "tenant name" {
			tenant = val
			continue
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: bad stat %q: %w", f, err)
		}
		stats = append(stats, kv{key, x})
	}
	if tenant == "" {
		return nil, fmt.Errorf("telemetry: line has no tenant: %q", line)
	}
	out := make([]JobStats, 0, len(stats))
	for _, s := range stats {
		out = append(out, JobStats{Timestamp: ts, Tenant: tenant, StatName: s.name, Stat: s.val})
	}
	return out, nil
}

// WidthBucket reproduces SQL width_bucket(v, lo, hi, n): values below lo
// map to bucket 0, above hi to n+1, and [lo,hi) is split into n equal
// buckets numbered 1..n. The LogAnalytics query uses (0, 100, 10).
func WidthBucket(v, lo, hi float64, n int) int {
	if n <= 0 {
		return 0
	}
	if v < lo {
		return 0
	}
	if v >= hi {
		return n + 1
	}
	return int((v-lo)/(hi-lo)*float64(n)) + 1
}
