package telemetry

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseJobStats(t *testing.T) {
	line := "tenant name=alpha-07, job running time=532, cpu util=74.2, memory util=31.0"
	stats, err := ParseJobStats(42, line)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("got %d stats, want 3", len(stats))
	}
	want := map[string]float64{
		"job running time": 532,
		"cpu util":         74.2,
		"memory util":      31.0,
	}
	for _, s := range stats {
		if s.Tenant != "alpha-07" {
			t.Fatalf("tenant = %q", s.Tenant)
		}
		if s.Timestamp != 42 {
			t.Fatalf("ts = %d", s.Timestamp)
		}
		if w, ok := want[s.StatName]; !ok || w != s.Stat {
			t.Fatalf("stat %q = %v, want %v", s.StatName, s.Stat, w)
		}
	}
}

func TestParseJobStatsErrors(t *testing.T) {
	if _, err := ParseJobStats(0, "job running time=5"); err == nil {
		t.Fatal("missing tenant should error")
	}
	if _, err := ParseJobStats(0, "tenant name=x, cpu util=abc"); err == nil {
		t.Fatal("non-numeric stat should error")
	}
	// Fields without '=' are skipped, not fatal.
	stats, err := ParseJobStats(0, "garbage, tenant name=x, cpu util=5")
	if err != nil || len(stats) != 1 {
		t.Fatalf("got %v, %v", stats, err)
	}
}

func TestWidthBucket(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0},
		{0, 1},
		{9.99, 1},
		{10, 2},
		{55, 6},
		{99.9, 10},
		{100, 11},
		{150, 11},
	}
	for _, c := range cases {
		if got := WidthBucket(c.v, 0, 100, 10); got != c.want {
			t.Errorf("WidthBucket(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if WidthBucket(5, 0, 100, 0) != 0 {
		t.Fatal("n<=0 should return 0")
	}
}

func TestWidthBucketRange(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		b := WidthBucket(v, 0, 100, 10)
		return b >= 0 && b <= 11
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewLogRecordSize(t *testing.T) {
	r := NewLogRecord(7, "hello world")
	if r.WireSize != len("hello world") {
		t.Fatalf("WireSize = %d", r.WireSize)
	}
	ll := r.Data.(*LogLine)
	if ll.Timestamp != 7 || ll.Raw != "hello world" {
		t.Fatalf("bad payload %+v", ll)
	}
}

func TestJobStatsWireSize(t *testing.T) {
	j := &JobStats{Tenant: "abcd", StatName: "cpu util"}
	if got := j.JobStatsWireSize(); got != 4+8+8+8+4+16 {
		t.Fatalf("wire size = %d", got)
	}
}
