package telemetry

import (
	"fmt"
	"net/netip"
)

// Wire sizes taken from the paper (§II-B): a Pingmesh probe record is 86 B
// on the wire including framing overhead; the listed fields are 32 B and
// the remainder is envelope/metadata, which we account for as a constant.
const (
	// PingProbeWireSize is the on-wire size of one probe record.
	PingProbeWireSize = 86
	// ToRProbeWireSize is the size of a probe after the two IP→ToR joins
	// and projection onto (srcToR, dstToR, rtt): three 4 B fields plus the
	// same envelope overhead as a probe minus the dropped fields.
	ToRProbeWireSize = 66
)

// PingProbe is one Pingmesh latency probe between a pair of servers
// (paper §II-B: timestamp 8B, src IP 4B, src cluster 4B, dst IP 4B,
// dst cluster 4B, RTT 4B, error code 4B).
type PingProbe struct {
	Timestamp  int64  // probe time, microseconds
	SrcIP      uint32 // IPv4 as big-endian uint32
	SrcCluster uint32
	DstIP      uint32
	DstCluster uint32
	RTTMicros  uint32 // round-trip time in microseconds
	ErrCode    uint32 // 0 = success
}

// OK reports whether the probe completed without error. The S2SProbe and
// T2TProbe queries filter on ErrCode == 0.
func (p *PingProbe) OK() bool { return p.ErrCode == 0 }

// PairKey returns the grouping key for (srcIP, dstIP).
func (p *PingProbe) PairKey() uint64 {
	return uint64(p.SrcIP)<<32 | uint64(p.DstIP)
}

// Addr renders an IPv4 uint32 for debugging output.
func Addr(ip uint32) string {
	var b [4]byte
	b[0] = byte(ip >> 24)
	b[1] = byte(ip >> 16)
	b[2] = byte(ip >> 8)
	b[3] = byte(ip)
	return netip.AddrFrom4(b).String()
}

func (p *PingProbe) String() string {
	return fmt.Sprintf("probe %s->%s rtt=%dus err=%d",
		Addr(p.SrcIP), Addr(p.DstIP), p.RTTMicros, p.ErrCode)
}

// NewProbeRecord wraps a probe in a stream Record with the canonical wire
// size.
func NewProbeRecord(p *PingProbe) Record {
	return Record{Time: p.Timestamp, WireSize: PingProbeWireSize, Data: p}
}

// ToRProbe is the result of joining a PingProbe with the IP→ToR mapping
// table (T2TProbe query, Listing 2) and projecting onto the fields needed
// downstream.
type ToRProbe struct {
	Timestamp int64
	SrcToR    uint32
	DstToR    uint32
	RTTMicros uint32
}

// PairKey returns the grouping key for (srcToR, dstToR).
func (p *ToRProbe) PairKey() uint64 {
	return uint64(p.SrcToR)<<32 | uint64(p.DstToR)
}

// ToRTable maps server IPv4 addresses to top-of-rack switch identifiers.
// It is the static join table of the T2TProbe query; its size drives the
// join operator's hash-probe cost (paper §VI-C varies it 50 → 500 → 5000).
type ToRTable struct {
	m map[uint32]uint32
}

// NewToRTable builds a table that assigns the given IPs round-robin to
// torCount switches. Deterministic so experiments are reproducible.
func NewToRTable(ips []uint32, torCount int) *ToRTable {
	if torCount < 1 {
		torCount = 1
	}
	t := &ToRTable{m: make(map[uint32]uint32, len(ips))}
	for i, ip := range ips {
		t.m[ip] = uint32(i % torCount)
	}
	return t
}

// Lookup returns the ToR id for ip and whether the ip is known.
func (t *ToRTable) Lookup(ip uint32) (uint32, bool) {
	tor, ok := t.m[ip]
	return tor, ok
}

// Len returns the number of entries (the static table size that scales the
// join cost).
func (t *ToRTable) Len() int { return len(t.m) }

// IPs returns all keys in unspecified order (used by generators/tests).
func (t *ToRTable) IPs() []uint32 {
	out := make([]uint32, 0, len(t.m))
	for ip := range t.m {
		out = append(out, ip)
	}
	return out
}
