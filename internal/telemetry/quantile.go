package telemetry

import "fmt"

// QuantileRow is a mergeable approximate-quantile sketch for one group in
// one window: a fixed equi-width histogram over [Lo, Hi) with overflow
// and underflow cells. Merging is bucket-wise addition, making the
// aggregation incrementally updatable (rule R-1's admissible class) and
// therefore partitionable across a data source and the stream processor.
type QuantileRow struct {
	Key    GroupKey
	Window int64
	Lo, Hi float64
	// Counts has len(buckets)+2 cells: [underflow, b0..bN-1, overflow].
	Counts []int64
	Total  int64
}

// NewQuantileRow creates an empty sketch.
func NewQuantileRow(key GroupKey, window int64, lo, hi float64, buckets int) *QuantileRow {
	if buckets < 1 {
		buckets = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &QuantileRow{
		Key: key, Window: window, Lo: lo, Hi: hi,
		Counts: make([]int64, buckets+2),
	}
}

// Buckets returns the number of interior cells.
func (q *QuantileRow) Buckets() int { return len(q.Counts) - 2 }

// Observe adds one value.
func (q *QuantileRow) Observe(v float64) {
	q.Total++
	n := q.Buckets()
	switch {
	case v < q.Lo:
		q.Counts[0]++
	case v >= q.Hi:
		q.Counts[n+1]++
	default:
		idx := int((v - q.Lo) / (q.Hi - q.Lo) * float64(n))
		if idx >= n {
			idx = n - 1
		}
		q.Counts[idx+1]++
	}
}

// Merge folds another sketch with the same shape into this one.
func (q *QuantileRow) Merge(other *QuantileRow) error {
	if other.Lo != q.Lo || other.Hi != q.Hi || len(other.Counts) != len(q.Counts) {
		return fmt.Errorf("telemetry: incompatible quantile sketches (%v,%v,%d) vs (%v,%v,%d)",
			q.Lo, q.Hi, len(q.Counts), other.Lo, other.Hi, len(other.Counts))
	}
	for i, c := range other.Counts {
		q.Counts[i] += c
	}
	q.Total += other.Total
	return nil
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) by linear interpolation
// within the containing bucket; error is bounded by one bucket width.
func (q *QuantileRow) Quantile(p float64) float64 {
	if q.Total == 0 {
		return q.Lo
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(q.Total)
	acc := 0.0
	n := q.Buckets()
	width := (q.Hi - q.Lo) / float64(n)
	for i, c := range q.Counts {
		next := acc + float64(c)
		if next >= target && c > 0 {
			switch i {
			case 0:
				return q.Lo
			case n + 1:
				return q.Hi
			default:
				frac := (target - acc) / float64(c)
				return q.Lo + (float64(i-1)+frac)*width
			}
		}
		acc = next
	}
	return q.Hi
}

// Clone deep-copies the sketch.
func (q *QuantileRow) Clone() *QuantileRow {
	cp := *q
	cp.Counts = append([]int64(nil), q.Counts...)
	return &cp
}

// WireSize is the accounting size of the serialized sketch.
func (q *QuantileRow) WireSize() int {
	keyLen := 8
	if q.Key.Str != "" {
		keyLen = len(q.Key.Str)
	}
	return keyLen + 8 + 8 + 8 + 8 + len(q.Counts)*4 + 16
}
