package telemetry

import (
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestQuantileRowObserveAndQuantile(t *testing.T) {
	q := NewQuantileRow(NumKey(1), 2, 0, 1000, 100)
	for i := 0; i < 1000; i++ {
		q.Observe(float64(i))
	}
	if q.Total != 1000 || q.Buckets() != 100 {
		t.Fatalf("sketch: total=%d buckets=%d", q.Total, q.Buckets())
	}
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got := q.Quantile(p)
		want := p * 1000
		if math.Abs(got-want) > 10+1 { // one bucket width
			t.Fatalf("q%.2f = %v, want ≈%v", p, got, want)
		}
	}
}

// Property: merged sketches answer quantiles exactly like a single sketch
// over the union, and within one bucket width of the exact quantile.
func TestQuantileRowMergeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, split uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 20 + int(nRaw)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 500
		}
		k := int(split) % n

		whole := NewQuantileRow(NumKey(1), 0, 0, 500, 50)
		left := NewQuantileRow(NumKey(1), 0, 0, 500, 50)
		right := NewQuantileRow(NumKey(1), 0, 0, 500, 50)
		for i, v := range vals {
			whole.Observe(v)
			if i < k {
				left.Observe(v)
			} else {
				right.Observe(v)
			}
		}
		if err := left.Merge(right); err != nil {
			return false
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		width := 500.0 / 50
		// Sample spacing dominates the sketch error for small n: allow a
		// few ranks of slack on top of the bucket-width bound.
		for _, p := range []float64{0.1, 0.5, 0.9} {
			if left.Quantile(p) != whole.Quantile(p) {
				return false
			}
			rank := int(p * float64(n-1))
			lo := sorted[maxInt(0, rank-2)] - 2*width
			hi := sorted[minInt(n-1, rank+2)] + 2*width
			if got := whole.Quantile(p); got < lo || got > hi {
				return false
			}
		}
		return left.Total == whole.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestQuantileRowCloneAndWireSize(t *testing.T) {
	q := NewQuantileRow(StrKey("t|x"), 1, 0, 10, 4)
	q.Observe(3)
	c := q.Clone()
	c.Observe(7)
	if q.Total != 1 || c.Total != 2 {
		t.Fatal("clone must not share state")
	}
	if q.WireSize() != len("t|x")+8+8+8+8+6*4+16 {
		t.Fatalf("wire size = %d", q.WireSize())
	}
	numKeyed := NewQuantileRow(NumKey(5), 1, 0, 10, 4)
	if numKeyed.WireSize() != 8+8+8+8+8+6*4+16 {
		t.Fatalf("num-keyed wire size = %d", numKeyed.WireSize())
	}
}

func TestQuantileRowMergeShapeMismatch(t *testing.T) {
	a := NewQuantileRow(NumKey(1), 0, 0, 10, 4)
	for _, b := range []*QuantileRow{
		NewQuantileRow(NumKey(1), 0, 1, 10, 4), // lo differs
		NewQuantileRow(NumKey(1), 0, 0, 20, 4), // hi differs
		NewQuantileRow(NumKey(1), 0, 0, 10, 8), // buckets differ
	} {
		if err := a.Merge(b); err == nil {
			t.Fatal("incompatible merge must error")
		}
	}
}

func TestQuantileRowEmptyAndClamp(t *testing.T) {
	q := NewQuantileRow(NumKey(1), 0, 5, 15, 2)
	if q.Quantile(0.5) != 5 {
		t.Fatal("empty sketch returns Lo")
	}
	q.Observe(0)  // underflow
	q.Observe(99) // overflow
	if q.Quantile(-0.5) != 5 || q.Quantile(1.5) != 15 {
		t.Fatal("quantile clamping")
	}
	// Degenerate constructor.
	d := NewQuantileRow(NumKey(1), 0, 7, 7, 0)
	if d.Buckets() != 1 || d.Hi <= d.Lo {
		t.Fatalf("degenerate: %+v", d)
	}
}

func TestPingProbeString(t *testing.T) {
	p := &PingProbe{SrcIP: 0x0A000001, DstIP: 0x0A000002, RTTMicros: 99, ErrCode: 1}
	s := p.String()
	for _, want := range []string{"10.0.0.1", "10.0.0.2", "rtt=99", "err=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
