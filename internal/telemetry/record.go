// Package telemetry defines the record model flowing through Jarvis
// pipelines: generic stream records plus the concrete monitoring schemas
// used by the paper's workloads (Pingmesh network probes and LogAnalytics
// text logs).
//
// A Record carries an event time, an accounting wire size (bytes the record
// would occupy on the network, used for all traffic accounting in the
// engine, the simulator and the experiments) and a typed payload.
package telemetry

import "time"

// Record is the unit of data that flows between operators. Operators
// transform the payload and adjust WireSize; control proxies route whole
// records either to the local downstream operator or to the drain path.
type Record struct {
	// Time is the event time in microseconds since the Unix epoch.
	Time int64
	// WireSize is the serialized size of the record in bytes. All network
	// transfer accounting uses this field.
	WireSize int
	// Window is the identifier of the tumbling window this record was
	// assigned to by a Window operator; zero means unassigned.
	Window int64
	// Data is the typed payload (*PingProbe, *ToRProbe, *LogLine,
	// *JobStats, *AggRow, ...).
	Data any
}

// Micros converts a time.Time to the event-time representation used by
// Record.Time.
func Micros(t time.Time) int64 { return t.UnixMicro() }

// TimeOf converts an event time back into a time.Time.
func TimeOf(micros int64) time.Time { return time.UnixMicro(micros) }

// Batch is a slice of records processed together during one epoch.
type Batch []Record

// TotalBytes returns the sum of wire sizes across the batch.
func (b Batch) TotalBytes() int64 {
	var n int64
	for i := range b {
		n += int64(b[i].WireSize)
	}
	return n
}

// MinTime returns the smallest event time in the batch, or 0 for an empty
// batch.
func (b Batch) MinTime() int64 {
	if len(b) == 0 {
		return 0
	}
	min := b[0].Time
	for i := 1; i < len(b); i++ {
		if b[i].Time < min {
			min = b[i].Time
		}
	}
	return min
}

// MaxTime returns the largest event time in the batch, or 0 for an empty
// batch.
func (b Batch) MaxTime() int64 {
	if len(b) == 0 {
		return 0
	}
	max := b[0].Time
	for i := 1; i < len(b); i++ {
		if b[i].Time > max {
			max = b[i].Time
		}
	}
	return max
}

// Split partitions the batch into (head, tail) where head contains the
// first n records. n is clamped to [0, len(b)].
func (b Batch) Split(n int) (Batch, Batch) {
	if n < 0 {
		n = 0
	}
	if n > len(b) {
		n = len(b)
	}
	return b[:n], b[n:]
}

// Clone returns a copy of the batch slice (payload pointers are shared;
// records themselves are value-copied).
func (b Batch) Clone() Batch {
	out := make(Batch, len(b))
	copy(out, b)
	return out
}
