package telemetry

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMicrosRoundTrip(t *testing.T) {
	now := time.Now().Truncate(time.Microsecond)
	if got := TimeOf(Micros(now)); !got.Equal(now) {
		t.Fatalf("round trip: got %v want %v", got, now)
	}
}

func TestBatchTotalBytes(t *testing.T) {
	b := Batch{
		{WireSize: 86},
		{WireSize: 66},
		{WireSize: 0},
	}
	if got := b.TotalBytes(); got != 152 {
		t.Fatalf("TotalBytes = %d, want 152", got)
	}
	if got := Batch(nil).TotalBytes(); got != 0 {
		t.Fatalf("empty TotalBytes = %d, want 0", got)
	}
}

func TestBatchMinMaxTime(t *testing.T) {
	b := Batch{{Time: 30}, {Time: 10}, {Time: 20}}
	if got := b.MinTime(); got != 10 {
		t.Fatalf("MinTime = %d, want 10", got)
	}
	if got := b.MaxTime(); got != 30 {
		t.Fatalf("MaxTime = %d, want 30", got)
	}
	var empty Batch
	if empty.MinTime() != 0 || empty.MaxTime() != 0 {
		t.Fatal("empty batch min/max should be 0")
	}
}

func TestBatchSplit(t *testing.T) {
	b := Batch{{Time: 1}, {Time: 2}, {Time: 3}}
	cases := []struct {
		n          int
		lenH, lenT int
	}{
		{-1, 0, 3},
		{0, 0, 3},
		{2, 2, 1},
		{3, 3, 0},
		{99, 3, 0},
	}
	for _, c := range cases {
		h, tl := b.Split(c.n)
		if len(h) != c.lenH || len(tl) != c.lenT {
			t.Errorf("Split(%d) = (%d,%d), want (%d,%d)", c.n, len(h), len(tl), c.lenH, c.lenT)
		}
	}
}

func TestBatchSplitPreservesAll(t *testing.T) {
	f := func(times []int64, n int) bool {
		b := make(Batch, len(times))
		for i, ts := range times {
			b[i] = Record{Time: ts, WireSize: 1}
		}
		h, tl := b.Split(n)
		return len(h)+len(tl) == len(b) && h.TotalBytes()+tl.TotalBytes() == b.TotalBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchClone(t *testing.T) {
	b := Batch{{Time: 1, WireSize: 5}}
	c := b.Clone()
	c[0].Time = 99
	if b[0].Time != 1 {
		t.Fatal("Clone must not alias the original slice")
	}
}

func TestPingProbeKeyAndOK(t *testing.T) {
	p := &PingProbe{SrcIP: 0x0A000001, DstIP: 0x0A000002, ErrCode: 0}
	if !p.OK() {
		t.Fatal("ErrCode 0 should be OK")
	}
	if got := p.PairKey(); got != 0x0A000001_0A000002 {
		t.Fatalf("PairKey = %x", got)
	}
	p.ErrCode = 7
	if p.OK() {
		t.Fatal("nonzero ErrCode should not be OK")
	}
}

func TestAddrRendering(t *testing.T) {
	if got := Addr(0x0A010203); got != "10.1.2.3" {
		t.Fatalf("Addr = %q", got)
	}
}

func TestNewProbeRecordWireSize(t *testing.T) {
	p := &PingProbe{Timestamp: 123}
	r := NewProbeRecord(p)
	if r.WireSize != PingProbeWireSize {
		t.Fatalf("WireSize = %d, want %d", r.WireSize, PingProbeWireSize)
	}
	if r.Time != 123 {
		t.Fatalf("Time = %d, want 123", r.Time)
	}
}

func TestToRTable(t *testing.T) {
	ips := []uint32{1, 2, 3, 4, 5}
	tab := NewToRTable(ips, 2)
	if tab.Len() != 5 {
		t.Fatalf("Len = %d", tab.Len())
	}
	tor, ok := tab.Lookup(3)
	if !ok || tor != 0 {
		t.Fatalf("Lookup(3) = %d,%v want 0,true", tor, ok)
	}
	if _, ok := tab.Lookup(99); ok {
		t.Fatal("Lookup(99) should miss")
	}
	if got := len(tab.IPs()); got != 5 {
		t.Fatalf("IPs len = %d", got)
	}
	// torCount < 1 is clamped.
	tab2 := NewToRTable(ips, 0)
	for _, ip := range ips {
		if tor, _ := tab2.Lookup(ip); tor != 0 {
			t.Fatal("clamped table should map everything to ToR 0")
		}
	}
}

func TestToRProbePairKey(t *testing.T) {
	p := &ToRProbe{SrcToR: 3, DstToR: 9}
	if got := p.PairKey(); got != (3<<32)|9 {
		t.Fatalf("PairKey = %x", got)
	}
}
