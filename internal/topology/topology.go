// Package topology models the monitoring pipeline architecture of
// Fig. 4: a resource directory of data source and stream processor
// nodes arranged in a tree, the "core building block" (a parent SP and
// its child sources), and the query manager that optimizes and deploys a
// query across a building block.
package topology

import (
	"fmt"
	"sort"

	"jarvis/internal/plan"
)

// Role classifies a node in the monitoring tree.
type Role int

// Node roles (Fig. 4(b)).
const (
	// RoleSource is a leaf data source node (a monitored server).
	RoleSource Role = iota
	// RoleIntermediateSP aggregates a set of sources (level 1..H-1).
	RoleIntermediateSP
	// RoleRootSP computes the final query output.
	RoleRootSP
)

func (r Role) String() string {
	switch r {
	case RoleSource:
		return "source"
	case RoleIntermediateSP:
		return "intermediate-sp"
	case RoleRootSP:
		return "root-sp"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// NodeInfo describes one node in the resource directory.
type NodeInfo struct {
	ID     uint32
	Role   Role
	Parent uint32 // 0 for the root
	// Cores is the node's core count (SPs are provisioned, sources
	// over-provisioned).
	Cores int
	// BudgetFrac is the CPU fraction available to monitoring on a source.
	BudgetFrac float64
	// RateMbps is the source's data generation rate.
	RateMbps float64
	// Addr is the node's network address (agents/SP transports).
	Addr string
}

// Directory is the resource manager's view of the deployment (Fig. 4(a)).
type Directory struct {
	nodes map[uint32]NodeInfo
}

// NewDirectory creates an empty resource directory.
func NewDirectory() *Directory {
	return &Directory{nodes: make(map[uint32]NodeInfo)}
}

// Register adds or updates a node. ID 0 is reserved.
func (d *Directory) Register(n NodeInfo) error {
	if n.ID == 0 {
		return fmt.Errorf("topology: node id 0 is reserved")
	}
	d.nodes[n.ID] = n
	return nil
}

// Get looks a node up.
func (d *Directory) Get(id uint32) (NodeInfo, bool) {
	n, ok := d.nodes[id]
	return n, ok
}

// Len returns the number of registered nodes.
func (d *Directory) Len() int { return len(d.nodes) }

// Children returns the ids of nodes whose parent is id, ascending.
func (d *Directory) Children(id uint32) []uint32 {
	var out []uint32
	for _, n := range d.nodes {
		if n.Parent == id && n.ID != id {
			out = append(out, n.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sources returns all data source nodes, ascending by id.
func (d *Directory) Sources() []NodeInfo {
	var out []NodeInfo
	for _, n := range d.nodes {
		if n.Role == RoleSource {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Root returns the root SP, if registered.
func (d *Directory) Root() (NodeInfo, bool) {
	for _, n := range d.nodes {
		if n.Role == RoleRootSP {
			return n, true
		}
	}
	return NodeInfo{}, false
}

// Validate checks tree invariants: exactly one root, every non-root has a
// registered parent, sources are leaves, and the parent graph is acyclic.
func (d *Directory) Validate() error {
	roots := 0
	for _, n := range d.nodes {
		if n.Role == RoleRootSP {
			roots++
			if n.Parent != 0 {
				return fmt.Errorf("topology: root %d has a parent", n.ID)
			}
			continue
		}
		p, ok := d.nodes[n.Parent]
		if !ok {
			return fmt.Errorf("topology: node %d has unknown parent %d", n.ID, n.Parent)
		}
		if p.Role == RoleSource {
			return fmt.Errorf("topology: source %d cannot parent node %d", p.ID, n.ID)
		}
	}
	if roots != 1 {
		return fmt.Errorf("topology: %d roots, want exactly 1", roots)
	}
	// Acyclicity: walk up from every node.
	for _, n := range d.nodes {
		seen := map[uint32]bool{}
		cur := n
		for cur.Role != RoleRootSP {
			if seen[cur.ID] {
				return fmt.Errorf("topology: cycle through node %d", cur.ID)
			}
			seen[cur.ID] = true
			next, ok := d.nodes[cur.Parent]
			if !ok {
				break
			}
			cur = next
		}
	}
	return nil
}

// BuildingBlock is the unit the paper optimizes: one parent SP and its
// child data sources (§IV-A: "the combination of data source nodes and
// the common parent node constitutes a core building block").
type BuildingBlock struct {
	SP      NodeInfo
	Sources []NodeInfo
}

// BuildingBlocks partitions the tree into core building blocks, one per
// SP that directly parents at least one source.
func (d *Directory) BuildingBlocks() []BuildingBlock {
	var out []BuildingBlock
	for _, n := range d.nodes {
		if n.Role == RoleSource {
			continue
		}
		var sources []NodeInfo
		for _, cid := range d.Children(n.ID) {
			c := d.nodes[cid]
			if c.Role == RoleSource {
				sources = append(sources, c)
			}
		}
		if len(sources) > 0 {
			out = append(out, BuildingBlock{SP: n, Sources: sources})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SP.ID < out[j].SP.ID })
	return out
}

// Assignment is one node's share of a deployed query.
type Assignment struct {
	Node NodeInfo
	// Boundary is the number of leading operators the node may run
	// (sources) or must be able to resume from (SPs run everything).
	Boundary int
}

// Deployment is the output of the query manager for one building block.
type Deployment struct {
	Query   *plan.Query // optimized
	SP      Assignment
	Sources []Assignment
}

// QueryManager is Fig. 4(a)'s query manager: optimizer plus deployer over
// the resource directory.
type QueryManager struct {
	dir *Directory
}

// NewQueryManager builds a manager over a validated directory.
func NewQueryManager(dir *Directory) (*QueryManager, error) {
	if err := dir.Validate(); err != nil {
		return nil, err
	}
	return &QueryManager{dir: dir}, nil
}

// Deploy optimizes the query and assigns boundaries for every building
// block: sources get the rule-constrained prefix (R-1..R-4 with R-4),
// SPs the full pipeline.
func (qm *QueryManager) Deploy(q *plan.Query) ([]Deployment, error) {
	opt, err := plan.Optimize(q)
	if err != nil {
		return nil, err
	}
	blocks := qm.dir.BuildingBlocks()
	if len(blocks) == 0 {
		return nil, fmt.Errorf("topology: no building blocks to deploy on")
	}
	srcBoundary := plan.EligiblePrefix(opt, plan.SourceRules())
	spBoundary := plan.EligiblePrefix(opt, plan.SPRules())
	var out []Deployment
	for _, b := range blocks {
		dep := Deployment{
			Query: opt,
			SP:    Assignment{Node: b.SP, Boundary: spBoundary},
		}
		for _, s := range b.Sources {
			dep.Sources = append(dep.Sources, Assignment{Node: s, Boundary: srcBoundary})
		}
		out = append(out, dep)
	}
	return out, nil
}

// StarTopology builds the common evaluation layout: one root SP with n
// sources, each with the given budget and rate.
func StarTopology(n int, budgetFrac, rateMbps float64) *Directory {
	d := NewDirectory()
	_ = d.Register(NodeInfo{ID: 1, Role: RoleRootSP, Cores: 64, Addr: "sp-root"})
	for i := 0; i < n; i++ {
		_ = d.Register(NodeInfo{
			ID: uint32(i + 2), Role: RoleSource, Parent: 1,
			Cores: 1, BudgetFrac: budgetFrac, RateMbps: rateMbps,
			Addr: fmt.Sprintf("src-%03d", i),
		})
	}
	return d
}
