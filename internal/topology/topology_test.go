package topology

import (
	"testing"

	"jarvis/internal/plan"
)

func TestDirectoryBasics(t *testing.T) {
	d := NewDirectory()
	if err := d.Register(NodeInfo{ID: 0}); err == nil {
		t.Fatal("id 0 must be rejected")
	}
	if err := d.Register(NodeInfo{ID: 1, Role: RoleRootSP}); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(NodeInfo{ID: 2, Role: RoleSource, Parent: 1}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatal("len")
	}
	n, ok := d.Get(2)
	if !ok || n.Parent != 1 {
		t.Fatalf("get: %+v %v", n, ok)
	}
	if _, ok := d.Get(99); ok {
		t.Fatal("missing node found")
	}
	if kids := d.Children(1); len(kids) != 1 || kids[0] != 2 {
		t.Fatalf("children = %v", kids)
	}
	if srcs := d.Sources(); len(srcs) != 1 || srcs[0].ID != 2 {
		t.Fatalf("sources = %v", srcs)
	}
	root, ok := d.Root()
	if !ok || root.ID != 1 {
		t.Fatal("root lookup")
	}
}

func TestValidate(t *testing.T) {
	// Valid star.
	d := StarTopology(3, 0.5, 26.2)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}

	// No root.
	d2 := NewDirectory()
	_ = d2.Register(NodeInfo{ID: 1, Role: RoleSource, Parent: 1})
	if err := d2.Validate(); err == nil {
		t.Fatal("rootless tree must fail")
	}

	// Two roots.
	d3 := NewDirectory()
	_ = d3.Register(NodeInfo{ID: 1, Role: RoleRootSP})
	_ = d3.Register(NodeInfo{ID: 2, Role: RoleRootSP})
	if err := d3.Validate(); err == nil {
		t.Fatal("double root must fail")
	}

	// Unknown parent.
	d4 := NewDirectory()
	_ = d4.Register(NodeInfo{ID: 1, Role: RoleRootSP})
	_ = d4.Register(NodeInfo{ID: 2, Role: RoleSource, Parent: 77})
	if err := d4.Validate(); err == nil {
		t.Fatal("unknown parent must fail")
	}

	// Source as parent.
	d5 := NewDirectory()
	_ = d5.Register(NodeInfo{ID: 1, Role: RoleRootSP})
	_ = d5.Register(NodeInfo{ID: 2, Role: RoleSource, Parent: 1})
	_ = d5.Register(NodeInfo{ID: 3, Role: RoleSource, Parent: 2})
	if err := d5.Validate(); err == nil {
		t.Fatal("source parent must fail")
	}
}

func TestHierarchy(t *testing.T) {
	// Root ← two intermediate SPs ← sources (Fig. 4(b)).
	d := NewDirectory()
	_ = d.Register(NodeInfo{ID: 1, Role: RoleRootSP})
	_ = d.Register(NodeInfo{ID: 2, Role: RoleIntermediateSP, Parent: 1})
	_ = d.Register(NodeInfo{ID: 3, Role: RoleIntermediateSP, Parent: 1})
	for i := uint32(0); i < 4; i++ {
		parent := uint32(2)
		if i >= 2 {
			parent = 3
		}
		_ = d.Register(NodeInfo{ID: 10 + i, Role: RoleSource, Parent: parent})
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	blocks := d.BuildingBlocks()
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	for _, b := range blocks {
		if b.SP.Role != RoleIntermediateSP || len(b.Sources) != 2 {
			t.Fatalf("block = %+v", b)
		}
	}
}

func TestQueryManagerDeploy(t *testing.T) {
	d := StarTopology(4, 0.6, 26.2)
	qm, err := NewQueryManager(d)
	if err != nil {
		t.Fatal(err)
	}
	deps, err := qm.Deploy(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 1 {
		t.Fatalf("deployments = %d", len(deps))
	}
	dep := deps[0]
	if len(dep.Sources) != 4 {
		t.Fatalf("sources = %d", len(dep.Sources))
	}
	// S2SProbe is fully source-eligible.
	for _, a := range dep.Sources {
		if a.Boundary != 3 {
			t.Fatalf("source boundary = %d", a.Boundary)
		}
	}
	if dep.SP.Boundary != 3 {
		t.Fatalf("sp boundary = %d", dep.SP.Boundary)
	}
}

func TestQueryManagerDeployR4(t *testing.T) {
	d := StarTopology(1, 0.6, 26.2)
	qm, _ := NewQueryManager(d)
	q := plan.S2SProbe()
	q.Ops[2].Parallelism = 4 // R-4: SP may parallelize, sources may not
	deps, err := qm.Deploy(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := deps[0].Sources[0].Boundary; got != 2 {
		t.Fatalf("source boundary = %d, want 2", got)
	}
	if got := deps[0].SP.Boundary; got != 3 {
		t.Fatalf("sp boundary = %d, want 3", got)
	}
}

func TestQueryManagerErrors(t *testing.T) {
	d := NewDirectory()
	_ = d.Register(NodeInfo{ID: 1, Role: RoleRootSP})
	qm, err := NewQueryManager(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qm.Deploy(plan.S2SProbe()); err == nil {
		t.Fatal("no building blocks must fail")
	}
	if _, err := qm.Deploy(plan.NewQuery("bad")); err == nil {
		t.Fatal("invalid query must fail")
	}
	bad := NewDirectory()
	if _, err := NewQueryManager(bad); err == nil {
		t.Fatal("invalid directory must fail")
	}
}

func TestRoleStrings(t *testing.T) {
	if RoleSource.String() != "source" || RoleIntermediateSP.String() != "intermediate-sp" ||
		RoleRootSP.String() != "root-sp" || Role(9).String() != "role(9)" {
		t.Fatal("role strings")
	}
}

func TestStarTopologyShape(t *testing.T) {
	d := StarTopology(250, 0.05, 2.62)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Sources()) != 250 {
		t.Fatal("source count")
	}
	blocks := d.BuildingBlocks()
	if len(blocks) != 1 || len(blocks[0].Sources) != 250 {
		t.Fatal("building block shape")
	}
}
