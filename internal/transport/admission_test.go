package transport

import (
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"jarvis/internal/admission"
	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// fakeClock is a manually advanced clock shared between the test and the
// controller's bucket math (mutexed: receiver goroutines may read it).
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}
func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// probeFrames builds one epoch's staged frames: n ping probes in a
// single stage-0 data frame.
func probeFrames(src uint32, base int64, n int) []wire.Frame {
	batch := make(telemetry.Batch, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, telemetry.NewProbeRecord(&telemetry.PingProbe{
			Timestamp: base + int64(i), SrcIP: 1, DstIP: 2, RTTMicros: 500,
		}))
	}
	return []wire.Frame{{StreamID: 0, Source: src, Records: batch}}
}

func newAdmissionReceiver(t *testing.T, cfg admission.Config) (*Receiver, *admission.Controller) {
	t.Helper()
	engine, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	rc.SetAdmission(admission.NewController(cfg))
	return rc, rc.Admission()
}

func discardAckWriter() *ackWriter {
	return &ackWriter{fw: wire.NewFrameWriter(io.Discard), ver: wire.WireV2}
}

// commit drives one EpochEnd through the receiver's commit path the way
// HandleConn does, returning the acks it would send.
func commit(t *testing.T, rc *Receiver, src uint32, seq uint64, frames []wire.Frame, aw *ackWriter) []ackTarget {
	t.Helper()
	targets, err := rc.commitEpoch(src, &wire.EpochEnd{Seq: seq, Watermark: int64(seq) * 1_000_000}, frames, aw)
	if err != nil {
		t.Fatal(err)
	}
	return targets
}

// TestAdmissionDelayAndDrain: an over-budget epoch parks in the delay
// queue instead of applying (or being dropped), and drains as the
// bucket refills — on the next commit and on Advance.
func TestAdmissionDelayAndDrain(t *testing.T) {
	clk := newFakeClock()
	frames := probeFrames(1, 0, 50)
	b := float64(framesBytes(frames))
	rc, ctrl := newAdmissionReceiver(t, admission.Config{
		RateBytesPerSec: b, BurstBytes: b, MaxDelayedEpochs: 16,
		DegradeAfter: 1 << 30, PromoteAfter: 1 << 30, DegradeRate: 0.25,
		Now: clk.now,
	})
	ctrl.Register(1, "acme", admission.Silver)
	aw := discardAckWriter()
	rc.registerConn(1, 1, aw)

	commit(t, rc, 1, 1, frames, aw)
	if got := rc.AppliedSeq(1); got != 1 {
		t.Fatalf("burst epoch not applied: frontier %d", got)
	}
	// Same instant: the bucket is spent, the epoch must wait, and the ack
	// must keep pointing at the durable frontier (never ack-before-apply).
	targets := commit(t, rc, 1, 2, frames, aw)
	if got := rc.AppliedSeq(1); got != 1 {
		t.Fatalf("over-budget epoch applied immediately (frontier %d)", got)
	}
	if len(targets) != 1 || targets[0].seq != 1 || targets[0].replay {
		t.Fatalf("delayed-epoch ack = %+v, want durable seq 1", targets)
	}
	if got := ctrl.Counters().Get(admission.CtrEpochsDelayed); got != 1 {
		t.Fatalf("adm_epochs_delayed = %d, want 1", got)
	}
	if rc.throttleFor(1) == 0 {
		t.Fatal("delayed tenant must receive a throttle hint")
	}

	// A second of refill: the queued epoch drains ahead of the new one,
	// which in turn parks (order preserved, budget again spent).
	clk.advance(time.Second)
	commit(t, rc, 1, 3, frames, aw)
	if got := rc.AppliedSeq(1); got != 2 {
		t.Fatalf("frontier after drain = %d, want 2", got)
	}
	clk.advance(time.Second)
	rc.Advance()
	if got := rc.AppliedSeq(1); got != 3 {
		t.Fatalf("frontier after Advance = %d, want 3", got)
	}
	if got := rc.Counters().Get(CtrEpochsApplied); got != 3 {
		t.Fatalf("epochs applied = %d, want 3 (zero loss)", got)
	}
	if got := ctrl.Counters().Get(admission.GaugeDelayedEpochs); got != 0 {
		t.Fatalf("adm_delayed_epochs gauge = %d after full drain", got)
	}
}

// TestAdmissionShedAndGapHeal: overflowing the global delay-queue bound
// sheds the newest epoch of the lowest class with a replay-request ack;
// the sequence hole it leaves is detected on the successor and healed by
// replaying from the shipper's buffer — nothing is lost.
func TestAdmissionShedAndGapHeal(t *testing.T) {
	clk := newFakeClock()
	frames := probeFrames(2, 0, 40)
	b := float64(framesBytes(frames))
	// Weighted buckets: best-effort (0.5×) holds exactly one epoch, gold
	// (2×) four — so the noisy source queues while the gold one sails.
	rc, ctrl := newAdmissionReceiver(t, admission.Config{
		RateBytesPerSec: 2 * b, BurstBytes: 2 * b, MaxDelayedEpochs: 2,
		ClassWeight:  [admission.NumClasses]float64{0.5, 1, 2},
		DegradeAfter: 1 << 30, PromoteAfter: 1 << 30, DegradeRate: 0.25,
		Now: clk.now,
	})
	ctrl.Register(1, "vip", admission.Gold)
	ctrl.Register(2, "noisy", admission.BestEffort)
	awGold, awBE := discardAckWriter(), discardAckWriter()
	rc.registerConn(1, 1, awGold)
	rc.registerConn(2, 1, awBE)

	commit(t, rc, 2, 1, frames, awBE) // fills the BE burst
	commit(t, rc, 2, 2, frames, awBE) // delayed
	commit(t, rc, 2, 3, frames, awBE) // parks behind the queue
	if got := rc.AppliedSeq(2); got != 1 {
		t.Fatalf("BE frontier = %d, want 1", got)
	}
	// Queue bound is 2: the fourth epoch overflows it and the newest
	// best-effort epoch (this one) is shed with a replay request.
	targets := commit(t, rc, 2, 4, frames, awBE)
	if got := rc.Counters().Get(CtrEpochsShed); got != 1 {
		t.Fatalf("epochs_shed = %d, want 1", got)
	}
	var sawReplay bool
	for _, tg := range targets {
		if tg.src == 2 && tg.replay {
			sawReplay = true
		}
	}
	if !sawReplay {
		t.Fatalf("shed epoch must request a replay, targets = %+v", targets)
	}

	// Gold is untouched by the noisy neighbor: admitted on the spot.
	commit(t, rc, 1, 1, frames, awGold)
	if got := rc.AppliedSeq(1); got != 1 {
		t.Fatal("gold epoch was not admitted immediately")
	}

	// The shipper, not yet aware of the shed, sends epoch 5: the hole at
	// seq 4 is a gap — discarded, replay requested, counted.
	targets = commit(t, rc, 2, 5, frames, awBE)
	if got := rc.Counters().Get(CtrEpochGaps); got != 1 {
		t.Fatalf("epoch_gaps = %d, want 1", got)
	}
	if len(targets) != 1 || !targets[0].replay {
		t.Fatalf("gap must request a replay, targets = %+v", targets)
	}

	// Replay heals everything as budget refills, in order, exactly once.
	clk.advance(2 * time.Second)
	commit(t, rc, 2, 4, frames, awBE)
	clk.advance(2 * time.Second)
	commit(t, rc, 2, 5, frames, awBE)
	for i := 0; i < 2; i++ {
		clk.advance(2 * time.Second)
		rc.Advance()
	}
	if got := rc.AppliedSeq(2); got != 5 {
		t.Fatalf("BE frontier = %d, want 5 after heal", got)
	}
	if got := rc.Counters().Get(CtrEpochsApplied); got != 6 {
		t.Fatalf("epochs applied = %d, want 6 (5 BE + 1 gold, zero loss)", got)
	}
}

// TestAdmissionGapSeenTwiceForceDrains: when the agent replays and the
// same out-of-order sequence shows up again, the hole below it is
// unfillable (the shipper's buffer evicted it) — the queue force-drains
// into bucket debt and the jump is accepted rather than wedging forever.
func TestAdmissionGapSeenTwiceForceDrains(t *testing.T) {
	clk := newFakeClock()
	frames := probeFrames(1, 0, 40)
	b := float64(framesBytes(frames))
	rc, _ := newAdmissionReceiver(t, admission.Config{
		RateBytesPerSec: b, BurstBytes: b, MaxDelayedEpochs: 8,
		DegradeAfter: 1 << 30, PromoteAfter: 1 << 30, DegradeRate: 0.25,
		Now: clk.now,
	})
	rc.Admission().Register(1, "acme", admission.Silver)
	aw := discardAckWriter()
	rc.registerConn(1, 1, aw)

	commit(t, rc, 1, 1, frames, aw) // admitted
	commit(t, rc, 1, 2, frames, aw) // delayed
	targets := commit(t, rc, 1, 4, frames, aw)
	if got := rc.Counters().Get(CtrEpochGaps); got != 1 {
		t.Fatalf("epoch_gaps = %d, want 1", got)
	}
	if len(targets) != 1 || !targets[0].replay {
		t.Fatalf("first sighting must request a replay: %+v", targets)
	}
	if got := rc.AppliedSeq(1); got != 1 {
		t.Fatalf("gapped epoch applied, frontier %d", got)
	}

	// Same sequence again: seq 3 is gone for good. Queue force-drains
	// (seq 2 applies on debt) and seq 4 proceeds through admission.
	commit(t, rc, 1, 4, frames, aw)
	if got := rc.AppliedSeq(1); got != 2 {
		t.Fatalf("queue not force-drained, frontier %d", got)
	}
	clk.advance(4 * time.Second) // repay debt + afford the parked epoch
	rc.Advance()
	if got := rc.AppliedSeq(1); got != 4 {
		t.Fatalf("jump not accepted after force drain, frontier %d", got)
	}
	if got := rc.Counters().Get(CtrEpochsApplied); got != 3 {
		t.Fatalf("epochs applied = %d, want 3 (seqs 1,2,4)", got)
	}
}

// TestAdmissionGapEscapeSurvivesMultiEpochReplay: an agent replaying
// more than one buffered epoch above an unfillable hole must still
// trigger the seen-twice escape. Regression for two wedges: the gap
// marker used to be overwritten by each higher epoch in the replay
// (two epochs alternated it forever), and a session re-hello used to
// wipe it entirely — a receiver recovering with an empty frontier
// against resuming agents (stateless SP restart) never applied another
// epoch.
func TestAdmissionGapEscapeSurvivesMultiEpochReplay(t *testing.T) {
	clk := newFakeClock()
	frames := probeFrames(1, 0, 40)
	b := float64(framesBytes(frames))
	rc, _ := newAdmissionReceiver(t, admission.Config{
		RateBytesPerSec: 100 * b, BurstBytes: 100 * b, MaxDelayedEpochs: 8,
		DegradeAfter: 1 << 30, PromoteAfter: 1 << 30, DegradeRate: 0.25,
		Now: clk.now,
	})
	rc.Admission().Register(1, "acme", admission.Silver)
	aw := discardAckWriter()

	// Session 1: the agent resumes at seq 4 and replays epochs 5 and 6;
	// the receiver has nothing applied, so 1..4 is the hole. Both
	// sightings must request replay without dislodging the marker.
	rc.registerConn(1, 4, aw)
	if targets := commit(t, rc, 1, 5, frames, aw); len(targets) != 1 || !targets[0].replay {
		t.Fatalf("first sighting of 5 must request replay: %+v", targets)
	}
	if targets := commit(t, rc, 1, 6, frames, aw); len(targets) != 1 || !targets[0].replay {
		t.Fatalf("sighting of 6 above the marker must request replay: %+v", targets)
	}
	if got := rc.Counters().Get(CtrEpochGaps); got != 1 {
		t.Fatalf("epoch_gaps = %d, want 1 (higher epoch must not re-mark)", got)
	}

	// Session 2: the agent reconnects (re-hello, Seq > 0) and replays
	// the same two epochs — everything it still buffers. The second
	// sighting of 5 proves the hole unfillable: accept the jump.
	rc.registerConn(1, 4, aw)
	commit(t, rc, 1, 5, frames, aw)
	if got := rc.AppliedSeq(1); got != 5 {
		t.Fatalf("jump not accepted on second sighting across sessions, frontier %d", got)
	}
	commit(t, rc, 1, 6, frames, aw)
	if got := rc.AppliedSeq(1); got != 6 {
		t.Fatalf("epoch after accepted jump did not apply, frontier %d", got)
	}
	if got := rc.Counters().Get(CtrEpochsApplied); got != 2 {
		t.Fatalf("epochs applied = %d, want 2 (seqs 5,6)", got)
	}
}

// TestStagedOverflowShedsNotFatal: a peer streaming more frames than the
// staging bound between commit markers used to kill the connection; now
// the epoch sheds (metered, replay-requested) and the connection — and
// the epochs after it — live on.
func TestStagedOverflowShedsNotFatal(t *testing.T) {
	rc, ctrl := newAdmissionReceiver(t, admission.Config{
		RateBytesPerSec: 1 << 30, BurstBytes: 1 << 30, MaxDelayedEpochs: 64,
		DegradeAfter: 1 << 30, PromoteAfter: 1 << 30, DegradeRate: 0.25,
		Now: time.Now,
	})
	ctrl.Register(7, "acme", admission.Silver)
	server, client := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- rc.HandleConn(server) }()

	acks := make(chan *wire.Ack, 1024)
	go func() {
		defer close(acks)
		fr := wire.NewFrameReader(client)
		for {
			f, err := fr.ReadFrame()
			if err != nil {
				return
			}
			for _, rec := range f.Records {
				if a, ok := rec.Data.(*wire.Ack); ok {
					acks <- a
				}
			}
		}
	}()

	fw := wire.NewFrameWriter(client)
	writeControl := func(rec telemetry.Record) {
		t.Helper()
		if err := fw.WriteFrame(wire.Frame{StreamID: wire.ControlStreamID, Source: 7, Records: telemetry.Batch{rec}}); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	writeControl(telemetry.Record{WireSize: 29, Data: &wire.Hello{
		Source: 7, Seq: 0, Version: wire.WireV2,
		Class: admission.Silver.Wire(), Tenant: "acme",
	}})

	// One more frame than the staging bound: the epoch must shed.
	one := probeFrames(7, 0, 1)[0]
	for i := 0; i <= maxStagedFrames; i++ {
		if err := fw.WriteFrame(one); err != nil {
			t.Fatal(err)
		}
	}
	writeControl(telemetry.Record{WireSize: 33, Data: &wire.EpochEnd{Seq: 1, Watermark: 1_000_000}})

	deadline := time.After(10 * time.Second)
	var sawReplay bool
	for !sawReplay {
		select {
		case a := <-acks:
			sawReplay = a.Replay
		case <-deadline:
			t.Fatal("no replay-request ack after staged overflow")
		}
	}
	if got := rc.Counters().Get(CtrEpochsShed); got != 1 {
		t.Fatalf("epochs_shed = %d, want 1", got)
	}

	// The shipper replays the epoch (smaller this time) and continues:
	// both must apply on the same, still-open connection.
	for i := 0; i < 4; i++ {
		if err := fw.WriteFrame(one); err != nil {
			t.Fatal(err)
		}
	}
	writeControl(telemetry.Record{WireSize: 33, Data: &wire.EpochEnd{Seq: 1, Watermark: 1_000_000}})
	writeControl(telemetry.Record{WireSize: 33, Data: &wire.EpochEnd{Seq: 2, Watermark: 2_000_000}})
	for rc.AppliedSeq(7) < 2 {
		select {
		case <-deadline:
			t.Fatalf("frontier stuck at %d after shed", rc.AppliedSeq(7))
		case <-time.After(2 * time.Millisecond):
		}
	}
	_ = client.Close()
	if err := <-done; err != nil {
		t.Fatalf("staged overflow must not kill the connection: %v", err)
	}
}

// TestConnectAnyBackoffBoundsDialRate: with every endpoint down, the
// jittered exponential backoff bounds how many dials a tight reconnect
// loop can fire — and keeps retrying at the cap rather than giving up.
func TestConnectAnyBackoffBoundsDialRate(t *testing.T) {
	ship := NewDurableShipper(3, 4)
	dials := 0
	ship.SetDialer(func(addr string) (io.ReadWriteCloser, error) {
		dials++
		return nil, io.ErrClosedPipe
	})
	clk := newFakeClock()
	ship.mu.Lock()
	ship.nowFn = clk.now
	ship.mu.Unlock()

	eps := []string{"10.0.0.1:7000", "10.0.0.2:7000"}
	backoffs := 0
	// A reconnect loop hammering ConnectAny once per millisecond for a
	// simulated minute.
	for i := 0; i < 60_000; i++ {
		if _, err := ship.ConnectAny(eps); err == ErrBackoff {
			backoffs++
		}
		clk.advance(time.Millisecond)
	}
	// Schedule: 100ms doubling to a 5s cap, jittered no lower than half.
	// The ramp is 6 rounds; at the cap a round fires at most every 2.5s —
	// well under 30 rounds (60 dials) in a minute, and at least ~17.
	rounds := dials / len(eps)
	if rounds > 40 {
		t.Fatalf("%d dial rounds over a simulated minute: backoff not bounding the rate", rounds)
	}
	if rounds < 10 {
		t.Fatalf("%d dial rounds over a simulated minute: backoff overshooting (agent stopped retrying?)", rounds)
	}
	if backoffs == 0 {
		t.Fatal("ErrBackoff never surfaced")
	}
	if got := ship.Counters().Get(CtrDialBackoffs); got == 0 {
		t.Fatal("dial_backoffs counter never incremented")
	}

	// A successful connect resets the schedule: the very next ConnectAny
	// must dial instead of returning ErrBackoff.
	engine, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startTestServer(t, NewReceiver(engine))
	defer stop()
	ship.SetDialer(func(string) (io.ReadWriteCloser, error) {
		dials++
		return net.Dial("tcp", addr)
	})
	clk.advance(2 * DialBackoffCap)
	if _, err := ship.ConnectAny([]string{addr}); err != nil {
		t.Fatalf("connect after backoff window: %v", err)
	}
	before := dials
	if _, err := ship.ConnectAny([]string{addr}); err != nil || dials == before {
		t.Fatalf("backoff not reset by success (err %v, dials %d→%d)", err, before, dials)
	}
	_ = ship.Close()
}

// TestThrottleHintReachesShipper: end to end over TCP, a starved budget
// turns into a positive pacing hint on the agent side of the ack stream.
func TestThrottleHintReachesShipper(t *testing.T) {
	rc, ctrl := newAdmissionReceiver(t, admission.Config{
		RateBytesPerSec: 1, BurstBytes: 1, MaxDelayedEpochs: 64,
		MaxThrottle:  2 * time.Second,
		DegradeAfter: 1 << 30, PromoteAfter: 1 << 30, DegradeRate: 0.25,
		Now: time.Now,
	})
	addr, stop := startTestServer(t, rc)
	defer stop()

	q := plan.S2SProbe()
	src, err := stream.NewPipeline(q, stream.DefaultOptions(4.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = src.SetLoadFactors([]float64{1, 1, 1})
	gen := workload.NewPingGen(workload.DefaultPingConfig(17))
	ship := NewDurableShipper(5, 64)
	ship.SetIdentity("hot", admission.BestEffort)
	if err := ship.ConnectConn(mustDial(t, addr)); err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= 3; e++ {
		if err := ship.ShipEpoch(src.RunEpoch(gen.NextWindow(1_000_000))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for ship.ThrottleHint() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("throttle hint never reached the shipper")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := ctrl.Counters().Get(admission.CtrEpochsDelayed); got == 0 {
		t.Fatal("starved budget produced no delayed epochs")
	}
	if got := ctrl.Counters().Get(admission.GaugeThrottleMicros); got == 0 {
		t.Fatal("throttle gauge never set")
	}
	_ = ship.Close()
}

// TestDegradeDontDropBoundedError: a tenant at a sustained multiple of
// its budget degrades to sampled ingestion; its histogram results come
// back rescaled within the recorded error bound, and the tenant promotes
// back to exact once pressure clears.
func TestDegradeDontDropBoundedError(t *testing.T) {
	q := plan.LogAnalytics()
	engine, err := stream.NewSPEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	clk := newFakeClock()

	gen := workload.NewLogGen(workload.LogConfig{
		Seed: 11, Tenants: 1, MatchRate: 1, IntervalMicros: 250,
	})
	const heavyEpochs = 6
	epochs := make([]telemetry.Batch, heavyEpochs)
	for i := range epochs {
		epochs[i] = gen.NextWindow(1_000_000)
	}
	var b int64
	for _, rec := range epochs[0] {
		b += int64(rec.WireSize)
	}

	ctrl := admission.NewController(admission.Config{
		// Half an epoch per second of budget: every commit is over budget,
		// a 2-commit streak degrades, 2 affordable commits promote back.
		RateBytesPerSec: float64(b) / 2, BurstBytes: float64(b) / 2,
		MaxDelayedEpochs: 16, DegradeAfter: 2, PromoteAfter: 2,
		DegradeRate: 0.25, Now: clk.now,
	})
	rc.SetAdmission(ctrl)
	ctrl.Register(1, "tenant-000", admission.BestEffort)
	// Best-effort weight defaults to 0.5×; keep the math above exact.
	aw := discardAckWriter()
	rc.registerConn(1, 1, aw)

	frame := func(batch telemetry.Batch) []wire.Frame {
		return []wire.Frame{{StreamID: 0, Source: 1, Records: batch}}
	}
	for i, batch := range epochs {
		commit(t, rc, 1, uint64(i+1), frame(batch), aw)
		clk.advance(time.Second)
	}
	if ctrl.DegradedRate(1) == 0 {
		t.Fatal("tenant at a sustained multiple of its budget never degraded")
	}
	if got := ctrl.Counters().Get(admission.CtrEpochsDegraded); got == 0 {
		t.Fatal("no epochs admitted in degraded form")
	}

	// Pressure clears: tiny epochs that fit the exact budget promote the
	// tenant back (draining whatever the queue still holds on the way).
	for i := 0; i < 6; i++ {
		clk.advance(2 * time.Second)
		commit(t, rc, 1, uint64(heavyEpochs+i+1), nil, aw)
	}
	if ctrl.DegradedRate(1) != 0 {
		t.Fatal("tenant did not promote back after pressure cleared")
	}
	if got := rc.AppliedSeq(1); got != heavyEpochs+6 {
		t.Fatalf("frontier = %d, want %d (degrade must not drop epochs)", got, heavyEpochs+6)
	}

	// Flush everything and compare against an exact replica fed the same
	// batches: per-window totals must agree within the recorded bound.
	high := int64(heavyEpochs+20) * 1_000_000
	rc.mu.Lock()
	rc.engine.ObserveWatermark(1, high)
	rc.mu.Unlock()
	got := rowTotals(rc.Advance())

	exact, err := stream.NewSPEngine(plan.LogAnalytics())
	if err != nil {
		t.Fatal(err)
	}
	exact.RegisterSource(1)
	for _, batch := range epochs {
		if err := exact.Ingest(0, batch); err != nil {
			t.Fatal(err)
		}
	}
	exact.ObserveWatermark(1, high)
	want := rowTotals(exact.Advance())

	if len(got) == 0 || len(want) == 0 {
		t.Fatalf("no results to compare (got %d, want %d rows)", len(got), len(want))
	}
	var sumGot, sumWant float64
	for _, c := range got {
		sumGot += c
	}
	for _, c := range want {
		sumWant += c
	}
	relErr := math.Abs(sumGot-sumWant) / sumWant
	// ~20k sampled records at rate 0.25: the 95% bound is well under 5%;
	// allow 15% so the test never flakes on an unlucky seed.
	if relErr > 0.15 {
		t.Fatalf("degraded total count off by %.1f%% (got %.0f, exact %.0f)", 100*relErr, sumGot, sumWant)
	}
	if got := ctrl.Counters().Get(admission.CtrSampledOut); got == 0 {
		t.Fatal("degraded ingestion sampled nothing out")
	}
}

// rowTotals folds a result batch into per-key counts.
func rowTotals(batch telemetry.Batch) map[string]float64 {
	out := make(map[string]float64)
	for _, rec := range batch {
		if row, ok := rec.Data.(*telemetry.AggRow); ok {
			out[row.Key.Str] += float64(row.Count)
		}
	}
	return out
}
