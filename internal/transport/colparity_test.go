package transport

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// TestColumnarRowParity extends the engine's batch/record parity
// guarantee across the wire: agent epochs are applied to four SP
// replicas — through the columnar (SoA) execution path, through the
// row-materializing path, record at a time, and from a second agent
// pipeline running the SoA path end to end (columnar generation,
// RunEpochColumnar, flate-compressed columnar frames) — and all four
// must emit byte-identical results on the paper's queries, under
// routing that exercises drains at every stage, partial aggregates and
// window flushes.

func colParityTable() *telemetry.ToRTable {
	ips := []uint32{workload.DefaultPingConfig(7).SrcIP}
	for i := 0; i < 2000; i++ {
		ips = append(ips, 0x0B000000+uint32(i))
	}
	return telemetry.NewToRTable(ips, 40)
}

func colParityFactors(nops, epoch int) []float64 {
	out := make([]float64, nops)
	for i := range out {
		switch epoch % 3 {
		case 0:
			out[i] = 1
		case 1:
			out[i] = 1 - 0.2*float64(i)
		default:
			out[i] = 0.5
		}
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// encodeBatch renders a result batch to canonical wire bytes, the
// "byte-identical" yardstick.
func encodeBatch(t *testing.T, batch telemetry.Batch) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, rec := range batch {
		buf, err = wire.EncodeRecord(buf, rec)
		if err != nil {
			t.Fatalf("encode result: %v", err)
		}
	}
	return buf
}

func TestColumnarRowParity(t *testing.T) {
	pingGen := func() func() telemetry.Batch {
		g := workload.NewPingGen(workload.DefaultPingConfig(7))
		return func() telemetry.Batch { return g.NextWindow(1_000_000) }
	}
	pingColGen := func() func(cb *wire.ColumnarBatch) {
		g := workload.NewPingGen(workload.DefaultPingConfig(7))
		return func(cb *wire.ColumnarBatch) { g.NextWindowCols(1_000_000, cb) }
	}
	cases := []struct {
		name   string
		query  func() *plan.Query
		gen    func() func() telemetry.Batch
		colGen func() func(cb *wire.ColumnarBatch)
	}{
		{
			name:   "S2SProbe",
			query:  plan.S2SProbe,
			gen:    pingGen,
			colGen: pingColGen,
		},
		{
			name:   "T2TProbe",
			query:  func() *plan.Query { return plan.T2TProbe(colParityTable()) },
			gen:    pingGen,
			colGen: pingColGen,
		},
		{
			name:   "S2SQuantile",
			query:  plan.S2SQuantileProbe,
			gen:    pingGen,
			colGen: pingColGen,
		},
		{
			name:  "LogAnalytics",
			query: plan.LogAnalytics,
			gen: func() func() telemetry.Batch {
				g := workload.NewLogGen(workload.DefaultLogConfig(7))
				return func() telemetry.Batch { return g.NextWindow(1_000_000) }
			},
			colGen: func() func(cb *wire.ColumnarBatch) {
				g := workload.NewLogGen(workload.DefaultLogConfig(7))
				return func(cb *wire.ColumnarBatch) { g.NextWindowCols(1_000_000, cb) }
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pipe, err := stream.NewPipeline(tc.query(), stream.DefaultOptions(4.0, 0))
			if err != nil {
				t.Fatal(err)
			}
			soaPipe, err := stream.NewPipeline(tc.query(), stream.DefaultOptions(4.0, 0))
			if err != nil {
				t.Fatal(err)
			}
			newEngine := func() *stream.SPEngine {
				e, err := stream.NewSPEngine(tc.query())
				if err != nil {
					t.Fatal(err)
				}
				e.RegisterSource(1)
				return e
			}
			colEngine, rowEngine, recEngine, soaEngine := newEngine(), newEngine(), newEngine(), newEngine()
			colRC := NewReceiver(colEngine) // columnar execution (the default)
			rowRC := NewReceiver(rowEngine)
			rowRC.SetColumnarExec(false)    // row-materializing reference
			soaRC := NewReceiver(soaEngine) // fed by the SoA agent pipeline

			// feedRecords applies the shipped epoch record at a time — the
			// pre-vectorization reference semantics.
			feedRecords := func(data []byte) {
				fr := wire.NewFrameReader(bytes.NewReader(data))
				for {
					f, err := fr.ReadFrame()
					if err != nil {
						break
					}
					if f.StreamID == WatermarkStreamID {
						for _, rec := range f.Records {
							if wm, ok := rec.Data.(*wire.Watermark); ok {
								recEngine.ObserveWatermark(f.Source, wm.Time)
							}
						}
						continue
					}
					for i := range f.Records {
						if err := recEngine.Ingest(int(f.StreamID), f.Records[i:i+1]); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			gen, colGen := tc.gen(), tc.colGen()
			nops := len(pipe.Query().Ops)
			var cb wire.ColumnarBatch
			sawOutput := false
			for epoch := 0; epoch < 13; epoch++ {
				lf := colParityFactors(nops, epoch)
				if tc.name == "T2TProbe" {
					// The dstToR join's input is an intermediate payload type
					// with no wire encoding, so epochs shipped over a real
					// transport never drain at that stage.
					lf[3] = 1
				}
				if err := pipe.SetLoadFactors(lf); err != nil {
					t.Fatal(err)
				}
				if err := soaPipe.SetLoadFactors(lf); err != nil {
					t.Fatal(err)
				}
				cb.Reset()
				var input telemetry.Batch
				if epoch < 11 {
					input = gen()
					colGen(&cb)
				} else {
					pipe.ObserveTime(int64(epoch+1) * 1_000_000)
					soaPipe.ObserveTime(int64(epoch+1) * 1_000_000)
				}
				res := pipe.RunEpoch(input)
				var buf bytes.Buffer
				sh := NewShipper(1, &buf)
				sh.EnableColumnar()
				if err := sh.ShipEpoch(res); err != nil {
					t.Fatal(err)
				}
				data := buf.Bytes()
				if err := colRC.HandleStream(bytes.NewReader(data)); err != nil {
					t.Fatal(err)
				}
				if err := rowRC.HandleStream(bytes.NewReader(data)); err != nil {
					t.Fatal(err)
				}
				feedRecords(data)

				// Fourth leg: the SoA agent pipeline's epoch, shipped with
				// frame compression on.
				soaRes := soaPipe.RunEpochColumnar(&cb)
				var soaBuf bytes.Buffer
				soaSh := NewShipper(1, &soaBuf)
				soaSh.EnableColumnar()
				soaSh.EnableCompression()
				if err := soaSh.ShipEpoch(soaRes); err != nil {
					t.Fatal(err)
				}
				if err := soaRC.HandleStream(bytes.NewReader(soaBuf.Bytes())); err != nil {
					t.Fatal(err)
				}

				colOut := colRC.Advance()
				rowOut := rowRC.Advance()
				recOut := recEngine.Advance()
				soaOut := soaRC.Advance()
				if err := tripleEqual(t, colOut, rowOut, recOut); err != nil {
					t.Fatalf("epoch %d: %v", epoch, err)
				}
				if err := tripleEqual(t, colOut, soaOut, soaOut); err != nil {
					t.Fatalf("epoch %d (SoA agent leg): %v", epoch, err)
				}
				if len(colOut) > 0 {
					sawOutput = true
				}
			}
			if !sawOutput {
				t.Fatal("parity run never flushed results — the test is vacuous")
			}
		})
	}
}

func tripleEqual(t *testing.T, col, row, rec telemetry.Batch) error {
	t.Helper()
	if len(col) != len(row) || len(col) != len(rec) {
		return fmt.Errorf("result counts differ: columnar %d, row %d, record %d", len(col), len(row), len(rec))
	}
	for i := range col {
		if !reflect.DeepEqual(col[i], row[i]) {
			return fmt.Errorf("record %d: columnar %+v vs row %+v", i, col[i], row[i])
		}
		if !reflect.DeepEqual(col[i], rec[i]) {
			return fmt.Errorf("record %d: columnar %+v vs record-at-a-time %+v", i, col[i], rec[i])
		}
	}
	cb, rb, eb := encodeBatch(t, col), encodeBatch(t, row), encodeBatch(t, rec)
	if !bytes.Equal(cb, rb) || !bytes.Equal(cb, eb) {
		return fmt.Errorf("encoded results not byte-identical (%d/%d/%d bytes)", len(cb), len(rb), len(eb))
	}
	return nil
}
