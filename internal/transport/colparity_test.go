package transport

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// TestColumnarRowParity extends the engine's batch/record parity
// guarantee across the wire: one agent pipeline's shipped epochs are
// applied to three SP replicas — through the columnar (SoA) execution
// path, through the row-materializing path, and record at a time — and
// all three must emit byte-identical results on the paper's three
// queries, under routing that exercises drains at every stage, partial
// aggregates and window flushes.

func colParityTable() *telemetry.ToRTable {
	ips := []uint32{workload.DefaultPingConfig(7).SrcIP}
	for i := 0; i < 2000; i++ {
		ips = append(ips, 0x0B000000+uint32(i))
	}
	return telemetry.NewToRTable(ips, 40)
}

func colParityFactors(nops, epoch int) []float64 {
	out := make([]float64, nops)
	for i := range out {
		switch epoch % 3 {
		case 0:
			out[i] = 1
		case 1:
			out[i] = 1 - 0.2*float64(i)
		default:
			out[i] = 0.5
		}
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// encodeBatch renders a result batch to canonical wire bytes, the
// "byte-identical" yardstick.
func encodeBatch(t *testing.T, batch telemetry.Batch) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, rec := range batch {
		buf, err = wire.EncodeRecord(buf, rec)
		if err != nil {
			t.Fatalf("encode result: %v", err)
		}
	}
	return buf
}

func TestColumnarRowParity(t *testing.T) {
	cases := []struct {
		name  string
		query func() *plan.Query
		gen   func() func() telemetry.Batch
	}{
		{
			name:  "S2SProbe",
			query: plan.S2SProbe,
			gen: func() func() telemetry.Batch {
				g := workload.NewPingGen(workload.DefaultPingConfig(7))
				return func() telemetry.Batch { return g.NextWindow(1_000_000) }
			},
		},
		{
			name:  "T2TProbe",
			query: func() *plan.Query { return plan.T2TProbe(colParityTable()) },
			gen: func() func() telemetry.Batch {
				g := workload.NewPingGen(workload.DefaultPingConfig(7))
				return func() telemetry.Batch { return g.NextWindow(1_000_000) }
			},
		},
		{
			name:  "LogAnalytics",
			query: plan.LogAnalytics,
			gen: func() func() telemetry.Batch {
				g := workload.NewLogGen(workload.DefaultLogConfig(7))
				return func() telemetry.Batch { return g.NextWindow(1_000_000) }
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pipe, err := stream.NewPipeline(tc.query(), stream.DefaultOptions(4.0, 0))
			if err != nil {
				t.Fatal(err)
			}
			newEngine := func() *stream.SPEngine {
				e, err := stream.NewSPEngine(tc.query())
				if err != nil {
					t.Fatal(err)
				}
				e.RegisterSource(1)
				return e
			}
			colEngine, rowEngine, recEngine := newEngine(), newEngine(), newEngine()
			colRC := NewReceiver(colEngine) // columnar execution (the default)
			rowRC := NewReceiver(rowEngine)
			rowRC.SetColumnarExec(false) // row-materializing reference

			// feedRecords applies the shipped epoch record at a time — the
			// pre-vectorization reference semantics.
			feedRecords := func(data []byte) {
				fr := wire.NewFrameReader(bytes.NewReader(data))
				for {
					f, err := fr.ReadFrame()
					if err != nil {
						break
					}
					if f.StreamID == WatermarkStreamID {
						for _, rec := range f.Records {
							if wm, ok := rec.Data.(*wire.Watermark); ok {
								recEngine.ObserveWatermark(f.Source, wm.Time)
							}
						}
						continue
					}
					for i := range f.Records {
						if err := recEngine.Ingest(int(f.StreamID), f.Records[i:i+1]); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			gen := tc.gen()
			nops := len(pipe.Query().Ops)
			sawOutput := false
			for epoch := 0; epoch < 13; epoch++ {
				lf := colParityFactors(nops, epoch)
				if tc.name == "T2TProbe" {
					// The dstToR join's input is an intermediate payload type
					// with no wire encoding, so epochs shipped over a real
					// transport never drain at that stage.
					lf[3] = 1
				}
				if err := pipe.SetLoadFactors(lf); err != nil {
					t.Fatal(err)
				}
				var input telemetry.Batch
				if epoch < 11 {
					input = gen()
				} else {
					pipe.ObserveTime(int64(epoch+1) * 1_000_000)
				}
				res := pipe.RunEpoch(input)
				var buf bytes.Buffer
				sh := NewShipper(1, &buf)
				sh.EnableColumnar()
				if err := sh.ShipEpoch(res); err != nil {
					t.Fatal(err)
				}
				data := buf.Bytes()
				if err := colRC.HandleStream(bytes.NewReader(data)); err != nil {
					t.Fatal(err)
				}
				if err := rowRC.HandleStream(bytes.NewReader(data)); err != nil {
					t.Fatal(err)
				}
				feedRecords(data)

				colOut := colRC.Advance()
				rowOut := rowRC.Advance()
				recOut := recEngine.Advance()
				if err := tripleEqual(t, colOut, rowOut, recOut); err != nil {
					t.Fatalf("epoch %d: %v", epoch, err)
				}
				if len(colOut) > 0 {
					sawOutput = true
				}
			}
			if !sawOutput {
				t.Fatal("parity run never flushed results — the test is vacuous")
			}
		})
	}
}

func tripleEqual(t *testing.T, col, row, rec telemetry.Batch) error {
	t.Helper()
	if len(col) != len(row) || len(col) != len(rec) {
		return fmt.Errorf("result counts differ: columnar %d, row %d, record %d", len(col), len(row), len(rec))
	}
	for i := range col {
		if !reflect.DeepEqual(col[i], row[i]) {
			return fmt.Errorf("record %d: columnar %+v vs row %+v", i, col[i], row[i])
		}
		if !reflect.DeepEqual(col[i], rec[i]) {
			return fmt.Errorf("record %d: columnar %+v vs record-at-a-time %+v", i, col[i], rec[i])
		}
	}
	cb, rb, eb := encodeBatch(t, col), encodeBatch(t, row), encodeBatch(t, rec)
	if !bytes.Equal(cb, rb) || !bytes.Equal(cb, eb) {
		return fmt.Errorf("encoded results not byte-identical (%d/%d/%d bytes)", len(cb), len(rb), len(eb))
	}
	return nil
}
