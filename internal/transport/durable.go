package transport

import (
	"bytes"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"jarvis/internal/admission"
	"jarvis/internal/obs"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// DefaultMaxPending bounds the replay buffer: with the default 1 s
// epochs it rides out about a minute of SP downtime or ack lag before
// the oldest unacked epoch must be evicted.
const DefaultMaxPending = 64

// PendingEpoch is one fully encoded, not-yet-durable epoch in a
// DurableShipper's replay buffer.
type PendingEpoch struct {
	Seq  uint64
	Data []byte
}

// clonePending deep-copies a pending slice so snapshots and restores
// never alias the shipper's live buffer.
func clonePending(in []PendingEpoch) []PendingEpoch {
	out := make([]PendingEpoch, len(in))
	for i, p := range in {
		out[i] = PendingEpoch{Seq: p.Seq, Data: append([]byte(nil), p.Data...)}
	}
	return out
}

// DurableShipper is the sequenced, replayable counterpart of Shipper: it
// numbers every epoch, keeps each one in a bounded replay buffer until
// the SP acknowledges it durable, and on (re)connect performs the
// Hello/Ack handshake and replays everything after the SP's durable
// frontier. Together with the receiver's sequence dedup this applies
// every epoch exactly once across agent and SP restarts.
//
// Shipping never fails on a broken connection — epochs are buffered and
// the shipper reports Connected() == false until the caller reconnects.
// All methods are safe for concurrent use.
type DurableShipper struct {
	source   uint32
	max      int
	counters *obs.Registry
	maxVer   uint32

	mu       sync.Mutex // guards all state below
	wmu      sync.Mutex // serializes writes to conn (never held with mu)
	conn     io.WriteCloser
	peerVer  uint32 // wire version negotiated with the current connection
	peerComp bool   // peer advertised compression support in its ack
	seq      uint64 // last assigned epoch sequence
	acked    uint64 // newest sequence the SP reported durable
	term     uint64 // newest primary term observed in acks (fencing token)
	prefer   string // last successfully connected endpoint (ConnectAny)
	pending  []PendingEpoch
	dropped  int64

	compress bool // encode columnar data frames flate-compressed

	// Admission identity announced in hellos, and the newest backpressure
	// hint the SP's acks carried (µs the agent should stretch its epoch
	// cadence by; 0 when the tenant is within budget).
	tenant    string
	classWire byte
	throttle  uint64

	// Reconnect pacing (ConnectAny): after a round where every endpoint
	// failed, the next attempt is gated by a jittered exponential backoff
	// so a dead SP is not hammered by the agent's epoch loop.
	dial    func(addr string) (io.ReadWriteCloser, error)
	nowFn   func() time.Time
	rng     *rand.Rand
	backoff time.Duration
	nextTry time.Time

	encBuf bytes.Buffer
	encFW  *wire.FrameWriter
}

// Reconnect backoff bounds: the first failed ConnectAny round defers
// the next one by ~DialBackoffBase (jittered in [base/2, base]),
// doubling per consecutive failing round up to DialBackoffCap.
const (
	DialBackoffBase = 100 * time.Millisecond
	DialBackoffCap  = 5 * time.Second
)

// NewDurableShipper creates a disconnected shipper for a source id.
// maxPending bounds the replay buffer (0 selects DefaultMaxPending).
func NewDurableShipper(source uint32, maxPending int) *DurableShipper {
	if maxPending <= 0 {
		maxPending = DefaultMaxPending
	}
	return &DurableShipper{
		source: source, max: maxPending,
		counters: obs.NewRegistry(),
		maxVer:   wire.CurrentWireVersion,
		dial: func(addr string) (io.ReadWriteCloser, error) {
			return net.Dial("tcp", addr)
		},
		nowFn: time.Now,
		// Deterministic per-source jitter: distinct sources spread their
		// retries without the shipper needing a global entropy source.
		rng: rand.New(rand.NewPCG(uint64(source), 0x9e3779b97f4a7c15)),
	}
}

// SetIdentity declares the tenant and SLO class the shipper announces
// in its hellos; the SP's admission controller budgets and prioritizes
// its epochs accordingly. Call before Connect.
func (d *DurableShipper) SetIdentity(tenant string, class admission.Class) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tenant = tenant
	d.classWire = class.Wire()
}

// SetDialer replaces the TCP dialer (tests inject failing or in-memory
// connections). Call before Connect.
func (d *DurableShipper) SetDialer(dial func(addr string) (io.ReadWriteCloser, error)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dial = dial
}

// ThrottleHint returns how long the SP has asked this shipper to
// stretch its epoch cadence (zero when within budget). The agent's main
// loop sleeps this much extra between epochs, converting receiver-side
// queueing into source-side pacing without losing data.
func (d *DurableShipper) ThrottleHint() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return time.Duration(d.throttle) * time.Microsecond
}

// SetMaxVersion caps the wire version the shipper announces and encodes
// (SetMaxVersion(wire.WireV1) emulates a pre-columnar agent). Call
// before the first ShipEpoch or Connect.
func (d *DurableShipper) SetMaxVersion(v uint32) {
	if v < wire.WireV1 {
		v = wire.WireV1
	}
	d.maxVer = v
}

// SetCompression switches the shipper's columnar data frames to the
// flate-compressed encoding. The replay buffer then stores epochs
// compressed; connections whose peer did not advertise compression in
// its ack get the frames decompressed at write time (and v1 peers get
// them transcoded, as always). No effect below wire v2. Call before the
// first ShipEpoch or Connect.
func (d *DurableShipper) SetCompression(v bool) {
	d.compress = v
}

// PeerVersion reports the wire version negotiated with the current
// connection (0 while disconnected).
func (d *DurableShipper) PeerVersion() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.conn == nil {
		return 0
	}
	return d.peerVer
}

// Counters exposes the shipper's health counters.
func (d *DurableShipper) Counters() *obs.Registry { return d.counters }

// Source returns the shipper's source id.
func (d *DurableShipper) Source() uint32 { return d.source }

// encodeEpoch serializes one epoch — drains, results, watermark and the
// EpochEnd commit marker — into a standalone byte string that can be
// written (and re-written on replay) as-is. Epochs are encoded in the
// shipper's newest wire version (columnar data frames under v2); when a
// connection negotiates down to v1 the bytes are transcoded at write
// time, so the canonical replay buffer stays version-independent.
//
// When lifecycle timing is on, the EpochEnd carries the trace-context
// extension: the caller's epoch timings plus the encode duration
// (encStart to just before the EpochEnd frame) and the seal timestamp.
// The extension is baked into the replay-buffer bytes, so a replayed
// epoch keeps its original seal time and the SP's ship segment honestly
// includes the buffering delay.
func (d *DurableShipper) encodeEpoch(seq uint64, res stream.EpochResult, encStart time.Time) ([]byte, error) {
	d.encBuf.Reset()
	if d.encFW == nil {
		d.encFW = wire.NewFrameWriter(&d.encBuf)
		d.encFW.SetColumnar(d.maxVer >= wire.WireV2)
		d.encFW.SetCompression(d.compress && d.maxVer >= wire.WireV2)
	} else {
		d.encFW.Reset(&d.encBuf)
	}
	fw := d.encFW
	// Row drains precede columnar drains at the same stage: the pipeline
	// cascades carryover rows before the arrival wave, so this frame order
	// preserves global record order for the SP's aggregation.
	nStages := len(res.Drains)
	if len(res.ColDrains) > nStages {
		nStages = len(res.ColDrains)
	}
	for stage := 0; stage < nStages; stage++ {
		if stage < len(res.Drains) && len(res.Drains[stage]) > 0 {
			if err := fw.WriteFrame(wire.Frame{StreamID: uint32(stage), Source: d.source, Records: res.Drains[stage]}); err != nil {
				return nil, err
			}
		}
		if stage < len(res.ColDrains) && len(res.ColDrains[stage].Secs) > 0 {
			if err := fw.WriteFrame(wire.Frame{StreamID: uint32(stage), Source: d.source, Cols: &res.ColDrains[stage]}); err != nil {
				return nil, err
			}
		}
	}
	if len(res.Results) > 0 {
		if err := fw.WriteFrame(wire.Frame{StreamID: uint32(res.ResultStage), Source: d.source, Records: res.Results}); err != nil {
			return nil, err
		}
	}
	if len(res.ColResults.Secs) > 0 {
		if err := fw.WriteFrame(wire.Frame{StreamID: uint32(res.ResultStage), Source: d.source, Cols: &res.ColResults}); err != nil {
			return nil, err
		}
	}
	wmRec := telemetry.Record{Time: res.Watermark, WireSize: 17, Data: &wire.Watermark{Time: res.Watermark}}
	if err := fw.WriteFrame(wire.Frame{StreamID: WatermarkStreamID, Source: d.source, Records: telemetry.Batch{wmRec}}); err != nil {
		return nil, err
	}
	end := &wire.EpochEnd{Seq: seq, Watermark: res.Watermark}
	if !encStart.IsZero() {
		now := time.Now()
		end.TraceID = uint64(d.source)<<40 | (seq & (1<<40 - 1))
		end.GenMicros = uint64(res.Timing.GenMicros)
		end.PipeMicros = uint64(res.Timing.PipeMicros)
		end.EncMicros = uint64(now.Sub(encStart).Microseconds())
		end.SentMicros = now.UnixMicro()
		end.StartMicros = res.Timing.StartMicros
		if end.StartMicros == 0 {
			// The driver recorded no epoch-level timing (sims, tests):
			// anchor the trace so the agent segments tile the seal time
			// exactly and e2e starts at encode.
			end.StartMicros = end.SentMicros - int64(end.GenMicros+end.PipeMicros+end.EncMicros)
		}
	}
	endRec := telemetry.Record{WireSize: 33, Data: end}
	if err := fw.WriteFrame(wire.Frame{StreamID: wire.ControlStreamID, Source: d.source, Records: telemetry.Batch{endRec}}); err != nil {
		return nil, err
	}
	if err := fw.Flush(); err != nil {
		return nil, err
	}
	return append([]byte(nil), d.encBuf.Bytes()...), nil
}

// ShipEpoch assigns the epoch the next sequence number, buffers it for
// replay and, when connected, writes it out. A write failure only marks
// the connection broken — the epoch stays buffered for the next
// reconnect.
//
// The whole operation runs under the write lock: sequence assignment and
// the wire write must not reorder against a concurrent reconnect's
// replay, or the receiver would see a higher sequence first and discard
// the replayed epochs as duplicates.
func (d *DurableShipper) ShipEpoch(res stream.EpochResult) error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	d.mu.Lock()
	d.seq++
	encStart := obs.Now()
	data, err := d.encodeEpoch(d.seq, res, encStart)
	obs.SinceN(obs.StageEncode, encStart, d.source, d.seq)
	if err != nil {
		d.seq--
		d.mu.Unlock()
		return fmt.Errorf("transport: encode epoch: %w", err)
	}
	d.pending = append(d.pending, PendingEpoch{Seq: d.seq, Data: data})
	for len(d.pending) > d.max {
		d.pending = d.pending[1:]
		d.dropped++
		d.counters.Inc(CtrEpochsDropped)
	}
	conn := d.conn
	peer := d.peerVer
	peerComp := d.peerComp
	seq := d.seq
	d.mu.Unlock()
	if conn == nil {
		return nil
	}
	shipStart := obs.Now()
	werr := d.writeEpochData(conn, peer, peerComp, data)
	obs.SinceN(obs.StageShip, shipStart, d.source, seq)
	if werr != nil {
		d.disconnect(conn)
	}
	return nil
}

// writeEpochData writes one encoded epoch to a connection, transcoding
// the canonical v2 bytes down to v1 frames when the peer negotiated v1,
// and decompressing them (section-byte-stable, no record decode) for a
// v2 peer that did not advertise compression support.
func (d *DurableShipper) writeEpochData(conn io.WriteCloser, peerVer uint32, peerComp bool, data []byte) error {
	if d.maxVer >= wire.WireV2 && peerVer < wire.WireV2 {
		// transcodeV1's reader inflates compressed frames transparently.
		v1, err := transcodeV1(data)
		if err != nil {
			return fmt.Errorf("transport: transcode epoch for v1 peer: %w", err)
		}
		data = v1
	} else if d.compress && d.maxVer >= wire.WireV2 && !peerComp {
		plain, err := wire.DecompressFrames(data)
		if err != nil {
			return fmt.Errorf("transport: decompress epoch for peer: %w", err)
		}
		data = plain
	}
	_, err := conn.Write(data)
	return err
}

// transcodeV1 re-encodes a byte string of wire frames with v1
// record-at-a-time framing (decode is version-transparent, so this
// also accepts already-v1 input).
func transcodeV1(data []byte) ([]byte, error) {
	var out bytes.Buffer
	fr := wire.NewFrameReader(bytes.NewReader(data))
	fw := wire.NewFrameWriter(&out)
	for {
		f, err := fr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := fw.WriteFrame(f); err != nil {
			return nil, err
		}
	}
	if err := fw.Flush(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Connect dials the SP and performs the resume handshake.
func (d *DurableShipper) Connect(addr string) error {
	d.mu.Lock()
	dial := d.dial
	d.mu.Unlock()
	conn, err := dial(addr)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if err := d.ConnectConn(conn); err != nil {
		_ = conn.Close()
		return err
	}
	return nil
}

// ConnectConn adopts an established connection: it sends Hello, waits
// for the SP's durable-frontier ack, prunes the replay buffer up to it,
// replays everything after it, and starts the background ack reader.
func (d *DurableShipper) ConnectConn(conn io.ReadWriteCloser) error {
	var hello bytes.Buffer
	fw := wire.NewFrameWriter(&hello)
	d.mu.Lock()
	rec := telemetry.Record{WireSize: 29, Data: &wire.Hello{
		Source: d.source, Seq: d.seq, Version: d.maxVer, Term: d.term,
		Compress: d.compress && d.maxVer >= wire.WireV2,
		Class:    d.classWire, Tenant: d.tenant,
	}}
	d.mu.Unlock()
	if err := fw.WriteFrame(wire.Frame{StreamID: wire.ControlStreamID, Source: d.source, Records: telemetry.Batch{rec}}); err != nil {
		return err
	}
	if err := fw.Flush(); err != nil {
		return err
	}
	if _, err := conn.Write(hello.Bytes()); err != nil {
		return fmt.Errorf("transport: hello: %w", err)
	}
	fr := wire.NewFrameReader(conn)
	ack, err := readAck(fr)
	if err != nil {
		return fmt.Errorf("transport: hello ack: %w", err)
	}
	// Negotiate: both sides speak min(hello, ack). A pre-versioning peer
	// acks without a version field (0), which means v1.
	peer := ack.Version
	if peer == 0 {
		peer = wire.WireV1
	}
	if peer > d.maxVer {
		peer = d.maxVer
	}
	// Compression is used only when both sides advertise it (and the
	// negotiated version carries columnar frames at all).
	peerComp := d.compress && ack.Compress && peer >= wire.WireV2

	// Take the write lock for the whole swap-and-replay: no concurrent
	// ShipEpoch may interleave a newer epoch ahead of the replayed ones
	// (the receiver would then discard the replay as stale duplicates).
	d.wmu.Lock()
	d.mu.Lock()
	if old := d.conn; old != nil {
		d.conn = nil
		_ = old.Close()
	}
	d.pruneLocked(ack.Seq)
	if ack.Term > d.term {
		d.term = ack.Term
	}
	replay := clonePending(d.pending)
	d.conn = conn
	d.peerVer = peer
	d.peerComp = peerComp
	d.mu.Unlock()

	d.counters.Inc(CtrReconnects)
	for _, p := range replay {
		if err := d.writeEpochData(conn, peer, peerComp, p.Data); err != nil {
			d.wmu.Unlock()
			d.disconnect(conn)
			return fmt.Errorf("transport: replay epoch %d: %w", p.Seq, err)
		}
	}
	d.wmu.Unlock()
	go d.readAcks(conn, fr)
	return nil
}

// ResumeBytes renders the shipper's resume stream as one byte string:
// the Hello handshake followed by every pending (unacked) epoch in the
// canonical encoding. It is the connectionless counterpart of
// ConnectConn for synchronous flush sessions — the deterministic
// cluster sim writes the stream straight into a receiver's HandleConn,
// collects the ack bytes it wrote back, and feeds them to AdoptAcks; no
// goroutines, no sockets, no wall clock. Replayed pending epochs
// deduplicate against the receiver's applied frontier exactly as a live
// reconnect's replay does. The peer must speak the shipper's own wire
// version (the sim's receivers do); no v1 transcoding is applied.
func (d *DurableShipper) ResumeBytes() ([]byte, error) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	var buf bytes.Buffer
	fw := wire.NewFrameWriter(&buf)
	rec := telemetry.Record{WireSize: 29, Data: &wire.Hello{
		Source: d.source, Seq: d.seq, Version: d.maxVer, Term: d.term,
		Compress: d.compress && d.maxVer >= wire.WireV2,
		Class:    d.classWire, Tenant: d.tenant,
	}}
	if err := fw.WriteFrame(wire.Frame{StreamID: wire.ControlStreamID, Source: d.source, Records: telemetry.Batch{rec}}); err != nil {
		return nil, err
	}
	if err := fw.Flush(); err != nil {
		return nil, err
	}
	for _, p := range d.pending {
		buf.Write(p.Data)
	}
	return buf.Bytes(), nil
}

// AdoptAcks consumes the ack bytes a synchronous flush session produced:
// the replay buffer prunes to the receiver's durable frontier, newer
// primary terms and throttle hints are adopted, and the return reports
// whether the receiver asked for a replay (a shed epoch) — satisfied
// naturally by the next ResumeBytes flush, which re-sends all pending.
func (d *DurableShipper) AdoptAcks(data []byte) (replay bool, err error) {
	fr := wire.NewFrameReader(bytes.NewReader(data))
	for {
		ack, rerr := readAck(fr)
		if rerr == io.EOF {
			return replay, nil
		}
		if rerr != nil {
			return replay, fmt.Errorf("transport: adopt acks: %w", rerr)
		}
		d.mu.Lock()
		d.pruneLocked(ack.Seq)
		if ack.Term > d.term {
			d.term = ack.Term
		}
		d.throttle = ack.ThrottleMicros
		d.mu.Unlock()
		if ack.Replay {
			replay = true
		}
	}
}

// readAck scans frames until the first Ack control record.
func readAck(fr *wire.FrameReader) (*wire.Ack, error) {
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			return nil, err
		}
		if f.StreamID != wire.ControlStreamID {
			continue
		}
		for _, rec := range f.Records {
			if ack, ok := rec.Data.(*wire.Ack); ok {
				return ack, nil
			}
		}
	}
}

// readAcks consumes the SP's ack stream for one connection, pruning the
// replay buffer as the durable frontier advances, adopting throttle
// hints, and honoring replay requests (the SP shed an epoch and wants
// the unacked tail re-sent on this same connection).
func (d *DurableShipper) readAcks(conn io.WriteCloser, fr *wire.FrameReader) {
	for {
		ack, err := readAck(fr)
		if err != nil {
			d.disconnect(conn)
			return
		}
		d.mu.Lock()
		d.pruneLocked(ack.Seq)
		if ack.Term > d.term {
			d.term = ack.Term
		}
		d.throttle = ack.ThrottleMicros
		d.mu.Unlock()
		if ack.Replay {
			d.replayPending(conn)
		}
	}
}

// replayPending re-sends every unacked epoch on the given connection,
// in order, under the write lock so no concurrent ShipEpoch interleaves
// a newer epoch ahead of the replayed tail.
func (d *DurableShipper) replayPending(conn io.WriteCloser) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	d.mu.Lock()
	if d.conn != conn {
		d.mu.Unlock()
		return
	}
	replay := clonePending(d.pending)
	peer, peerComp := d.peerVer, d.peerComp
	d.mu.Unlock()
	d.counters.Inc(CtrReplayRequests)
	for _, p := range replay {
		if err := d.writeEpochData(conn, peer, peerComp, p.Data); err != nil {
			d.disconnect(conn)
			return
		}
	}
}

func (d *DurableShipper) pruneLocked(seq uint64) {
	if seq > d.acked {
		d.acked = seq
	}
	i := 0
	for i < len(d.pending) && d.pending[i].Seq <= d.acked {
		i++
	}
	d.pending = d.pending[i:]
}

func (d *DurableShipper) disconnect(conn io.WriteCloser) {
	d.mu.Lock()
	was := d.conn == conn
	if was {
		d.conn = nil
	}
	d.mu.Unlock()
	if was {
		_ = conn.Close()
		d.counters.Inc(CtrConnsClosed)
	}
}

// Connected reports whether a live connection is attached.
func (d *DurableShipper) Connected() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.conn != nil
}

// Seq returns the last assigned epoch sequence number.
func (d *DurableShipper) Seq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Acked returns the newest sequence the SP reported durable.
func (d *DurableShipper) Acked() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.acked
}

// Term returns the newest primary term observed in acks — the fencing
// token the shipper's hellos carry, so a stale primary that lost
// leadership learns it the moment a failed-over agent reconnects.
func (d *DurableShipper) Term() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.term
}

// SetTerm raises the shipper's fencing term (it never regresses). The
// agent recovery manager restores it from a snapshot, so a restarted
// agent does not forget the promotion it had witnessed and hand its
// epochs to a stale primary.
func (d *DurableShipper) SetTerm(t uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t > d.term {
		d.term = t
	}
}

// Dropped returns how many unacked epochs the bounded buffer evicted
// (each is a hole replay cannot fill; size the buffer to the snapshot
// cadence to keep this zero).
func (d *DurableShipper) Dropped() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dropped
}

// State copies the shipper's durable state — sequence counters and the
// replay buffer — for inclusion in an agent snapshot.
func (d *DurableShipper) State() (seq, acked uint64, pending []PendingEpoch) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq, d.acked, clonePending(d.pending)
}

// RestoreState reloads the durable state captured by State. Call before
// Connect on a freshly constructed shipper.
func (d *DurableShipper) RestoreState(seq, acked uint64, pending []PendingEpoch) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq = seq
	d.acked = acked
	d.pending = clonePending(pending)
}

// Close detaches and closes the current connection (buffered epochs are
// kept).
func (d *DurableShipper) Close() error {
	d.mu.Lock()
	conn := d.conn
	d.conn = nil
	d.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	return nil
}
