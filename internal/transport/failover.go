package transport

import (
	"fmt"
	"strings"

	"jarvis/internal/obs"
)

// Multi-endpoint failover dialing (internal/ha): an agent is configured
// with every SP that may serve it — the primary and its warm standbys —
// and on connection loss walks the list until one admits its hello. A
// fenced or not-yet-promoted SP rejects the hello by closing the
// connection, so the dialer naturally converges on the current primary;
// the resume handshake and replay buffer then make the failover
// transparent (epochs the dead primary never made durable replay into
// the standby's sequence dedup).

// ParseEndpoints splits a comma-separated endpoint list ("host:a,host:b")
// into its non-empty entries.
func ParseEndpoints(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// ConnectAny dials the endpoints until one accepts the resume handshake,
// starting with the endpoint of the last successful connection (so a
// healthy reconnect does not shuffle agents between SPs). It returns the
// endpoint that accepted. Switching endpoints counts as a failover in
// the shipper's health counters.
func (d *DurableShipper) ConnectAny(endpoints []string) (string, error) {
	d.mu.Lock()
	prefer := d.prefer
	d.mu.Unlock()
	ordered := make([]string, 0, len(endpoints))
	for _, ep := range endpoints {
		if ep == prefer {
			ordered = append([]string{ep}, ordered...)
		} else {
			ordered = append(ordered, ep)
		}
	}
	var firstErr error
	for _, ep := range ordered {
		if err := d.Connect(ep); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		d.mu.Lock()
		moved := d.prefer != "" && d.prefer != ep
		prev := d.prefer
		d.prefer = ep
		term := d.term
		d.mu.Unlock()
		if moved {
			d.counters.Inc(CtrFailovers)
			obs.Emit(obs.Decision{
				Kind:        "failover",
				Source:      d.source,
				Cause:       "endpoint_switch",
				BeforeState: prev,
				AfterState:  ep,
				Term:        term,
			})
		}
		return ep, nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("transport: no endpoints configured")
	}
	return "", fmt.Errorf("transport: all %d endpoints unreachable: %w", len(endpoints), firstErr)
}
