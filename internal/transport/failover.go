package transport

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"jarvis/internal/obs"
)

// ErrBackoff reports that ConnectAny refused to dial because the
// jittered exponential backoff from previous failed rounds has not
// elapsed yet. Callers treat it like any other connect failure (stay
// disconnected, retry on the next loop iteration) — it just costs no
// network attempt.
var ErrBackoff = errors.New("transport: reconnect backoff in effect")

// Multi-endpoint failover dialing (internal/ha): an agent is configured
// with every SP that may serve it — the primary and its warm standbys —
// and on connection loss walks the list until one admits its hello. A
// fenced or not-yet-promoted SP rejects the hello by closing the
// connection, so the dialer naturally converges on the current primary;
// the resume handshake and replay buffer then make the failover
// transparent (epochs the dead primary never made durable replay into
// the standby's sequence dedup).

// ParseEndpoints splits a comma-separated endpoint list ("host:a,host:b")
// into its non-empty entries.
func ParseEndpoints(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// ConnectAny dials the endpoints until one accepts the resume handshake,
// starting with the endpoint of the last successful connection (so a
// healthy reconnect does not shuffle agents between SPs). It returns the
// endpoint that accepted. Switching endpoints counts as a failover in
// the shipper's health counters.
//
// Rounds where every endpoint fails arm a jittered exponential backoff
// (DialBackoffBase doubling to DialBackoffCap): until it elapses,
// ConnectAny returns ErrBackoff without dialing, bounding the dial rate
// an agent's tight reconnect loop can generate against a dead SP. A
// successful connect resets the backoff.
func (d *DurableShipper) ConnectAny(endpoints []string) (string, error) {
	d.mu.Lock()
	if d.nowFn().Before(d.nextTry) {
		d.mu.Unlock()
		d.counters.Inc(CtrDialBackoffs)
		return "", ErrBackoff
	}
	prefer := d.prefer
	d.mu.Unlock()
	ordered := make([]string, 0, len(endpoints))
	for _, ep := range endpoints {
		if ep == prefer {
			ordered = append([]string{ep}, ordered...)
		} else {
			ordered = append(ordered, ep)
		}
	}
	var firstErr error
	for _, ep := range ordered {
		if err := d.Connect(ep); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		d.mu.Lock()
		moved := d.prefer != "" && d.prefer != ep
		prev := d.prefer
		d.prefer = ep
		term := d.term
		d.backoff = 0
		d.nextTry = time.Time{}
		d.mu.Unlock()
		if moved {
			d.counters.Inc(CtrFailovers)
			obs.Emit(obs.Decision{
				Kind:        "failover",
				Source:      d.source,
				Cause:       "endpoint_switch",
				BeforeState: prev,
				AfterState:  ep,
				Term:        term,
			})
		}
		return ep, nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("transport: no endpoints configured")
	}
	d.armBackoff()
	return "", fmt.Errorf("transport: all %d endpoints unreachable: %w", len(endpoints), firstErr)
}

// armBackoff doubles the reconnect backoff (capped) and schedules the
// next permissible dial round, jittered in [backoff/2, backoff] so
// simultaneously disconnected agents do not retry in lockstep.
func (d *DurableShipper) armBackoff() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.backoff == 0 {
		d.backoff = DialBackoffBase
	} else if d.backoff *= 2; d.backoff > DialBackoffCap {
		d.backoff = DialBackoffCap
	}
	half := int64(d.backoff / 2)
	delay := time.Duration(half + d.rng.Int64N(half+1))
	d.nextTry = d.nowFn().Add(delay)
}
