// Flight recorder: a bounded per-connection ring of raw wire frames
// that dumps automatically when the receiver does something anomalous —
// sheds an epoch, degrades a tenant, fails over, fences a stale
// primary — so the exact bytes that provoked the event are on disk for
// offline replay, not reconstructed from logs after the fact.
//
// A dump is self-contained: the pinned Hello frame plus the retained
// frames of every live sequenced connection (verbatim wire bytes,
// still compressed if they traveled compressed), the decisions emitted
// since the previous dump, and the receiver-counter deltas over the
// same window. ReplayFlightDump feeds the frames back through a fresh
// Receiver byte-for-byte, so a dump doubles as a deterministic
// regression input.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"jarvis/internal/obs"
)

// FlightMagic starts every serialized flight dump.
const FlightMagic = "JARVISFR1\n"

// DefaultFlightBudget bounds one connection ring's retained frame bytes
// (the pinned Hello is kept outside the budget). Sized to hold several
// seconds of row-encoded epochs at evaluation rates — a single 1 s row
// data frame runs to hundreds of KiB, and a dump that cannot hold the
// epoch that provoked the anomaly is useless. A frame larger than the
// whole budget is still kept (alone) rather than dropped.
const DefaultFlightBudget = 8 << 20

// DefaultFlightDumps is how many serialized dumps the recorder retains.
const DefaultFlightDumps = 8

// DefaultFlightMinInterval rate-limits automatic dumps: anomalies
// arrive in bursts (every shed in an overload storm emits a decision),
// and one dump per burst captures the same ring contents as fifty.
const DefaultFlightMinInterval = time.Second

// CtrFlightDumps counts flight-recorder dumps in the default registry.
const CtrFlightDumps = "flight_dumps_total"

// FlightMeta is the JSON header of a serialized dump.
type FlightMeta struct {
	Reason   string `json:"reason"`
	TsMicros int64  `json:"ts_us,omitempty"`
	Seq      int64  `json:"seq"` // 1-based dump number within this recorder
	// Conns describes the per-connection frame sections, in blob order.
	Conns []FlightConnMeta `json:"conns"`
	// Decisions emitted since the previous dump (bounded by the decision
	// ring), newest last.
	Decisions []obs.Decision `json:"decisions,omitempty"`
	// CounterDeltas are receiver-counter increments since the previous
	// dump (or recorder creation), zero-delta names omitted.
	CounterDeltas map[string]int64 `json:"counter_deltas,omitempty"`
}

// FlightConnMeta describes one connection's frame section.
type FlightConnMeta struct {
	Source uint32 `json:"source"`
	Frames int    `json:"frames"`
	Bytes  int    `json:"bytes"`
}

// FlightRecorder arms a receiver with per-connection frame rings and
// serializes anomaly dumps. Install with Receiver.SetFlightRecorder,
// wire decision-triggered dumps with obs.Decisions().SetNotify(
// rec.OnDecision), and expose on-demand dumps via ServeHTTP.
type FlightRecorder struct {
	mu       sync.Mutex
	budget   int
	maxDumps int
	minGap   time.Duration
	lastAt   time.Time
	reg      *obs.Registry
	base     map[string]int64
	lastSeen int64 // obs.Decisions().Total() at the previous dump
	rings    map[*flightRing]struct{}
	retired  []*flightRing // recently closed connections, oldest first
	dumps    [][]byte
	total    int64
	lastMeta FlightMeta
	ctr      obs.Counter
}

// NewFlightRecorder returns an armed recorder. reg is the counter
// registry whose deltas each dump carries (typically the receiver's;
// nil skips counter deltas).
func NewFlightRecorder(reg *obs.Registry) *FlightRecorder {
	return &FlightRecorder{
		budget:   DefaultFlightBudget,
		maxDumps: DefaultFlightDumps,
		minGap:   DefaultFlightMinInterval,
		reg:      reg,
		base:     reg.Snapshot(),
		lastSeen: obs.Decisions().Total(),
		rings:    make(map[*flightRing]struct{}),
		ctr:      obs.Default().Counter(CtrFlightDumps),
	}
}

// SetBudget bounds each connection ring's retained frame bytes.
func (f *FlightRecorder) SetBudget(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n > 0 {
		f.budget = n
	}
}

// SetMinInterval sets the automatic-dump rate limit (0 disables it;
// manual Trigger calls always dump).
func (f *FlightRecorder) SetMinInterval(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.minGap = d
}

// OnDecision is the obs decision-log observer: anomalous kinds — shed
// verdicts, tenant degrade/promote flips, shipper failover, HA fencing
// and promotion — trigger a rate-limited dump named after the decision.
func (f *FlightRecorder) OnDecision(d obs.Decision) {
	switch d.Kind {
	case "admission", "degrade", "promote", "failover", "fencing", "promotion", "forced_drain":
		f.trigger(d.Kind+":"+d.Cause, true)
	}
}

// Trigger serializes a dump immediately (no rate limit) and returns it;
// the dump is also retained for Dumps and ServeHTTP. Returns nil when
// no sequenced connection is armed.
func (f *FlightRecorder) Trigger(reason string) []byte {
	return f.trigger(reason, false)
}

func (f *FlightRecorder) trigger(reason string, limited bool) []byte {
	f.mu.Lock()
	if limited && f.minGap > 0 && !f.lastAt.IsZero() && time.Since(f.lastAt) < f.minGap {
		f.mu.Unlock()
		return nil
	}
	rings := make([]*flightRing, 0, len(f.rings)+len(f.retired))
	for r := range f.rings {
		rings = append(rings, r)
	}
	rings = append(rings, f.retired...)
	f.lastAt = time.Now()
	f.mu.Unlock()

	// Snapshot the rings outside the recorder lock (capture takes each
	// ring's own lock; ring registration is the only shared state).
	var (
		conns []FlightConnMeta
		blobs [][]byte
	)
	for _, r := range rings {
		src, blob, n := r.snapshot()
		if n == 0 {
			continue
		}
		conns = append(conns, FlightConnMeta{Source: src, Frames: n, Bytes: len(blob)})
		blobs = append(blobs, blob)
	}
	if len(blobs) == 0 {
		return nil
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	f.total++
	meta := FlightMeta{
		Reason:   reason,
		TsMicros: time.Now().UnixMicro(),
		Seq:      f.total,
		Conns:    conns,
	}
	// Decisions since the previous dump, bounded by the decision ring.
	if dl := obs.Decisions(); dl != nil {
		total := dl.Total()
		if n := total - f.lastSeen; n > 0 {
			meta.Decisions = dl.Recent(int(n))
		}
		f.lastSeen = total
	}
	if f.reg != nil {
		cur := f.reg.Snapshot()
		deltas := make(map[string]int64)
		for name, v := range cur {
			if d := v - f.base[name]; d != 0 {
				deltas[name] = d
			}
		}
		if len(deltas) > 0 {
			meta.CounterDeltas = deltas
		}
		f.base = cur
	}
	dump := encodeFlightDump(&meta, blobs)
	f.dumps = append(f.dumps, dump)
	if len(f.dumps) > f.maxDumps {
		f.dumps = f.dumps[len(f.dumps)-f.maxDumps:]
	}
	f.lastMeta = meta
	f.ctr.Inc()
	return dump
}

// Dumps returns the retained serialized dumps, oldest first.
func (f *FlightRecorder) Dumps() [][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([][]byte, len(f.dumps))
	copy(out, f.dumps)
	return out
}

// LastDump describes the newest dump for /status (zero meta, false
// before the first dump).
func (f *FlightRecorder) LastDump() (FlightMeta, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastMeta, f.total > 0
}

// ServeHTTP serves the newest dump as application/octet-stream;
// ?trigger=1 forces a fresh dump first (404 when nothing is armed or
// recorded yet).
func (f *FlightRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("trigger") != "" {
		f.Trigger("manual:http")
	}
	f.mu.Lock()
	var dump []byte
	if len(f.dumps) > 0 {
		dump = f.dumps[len(f.dumps)-1]
	}
	f.mu.Unlock()
	if dump == nil {
		http.Error(w, "flight recorder: no dump recorded", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(dump)
}

// newRing registers a per-connection frame ring (HandleConn, one per
// sequenced connection).
func (f *FlightRecorder) newRing() *flightRing {
	r := &flightRing{rec: f, budget: f.budget}
	f.mu.Lock()
	f.rings[r] = struct{}{}
	f.mu.Unlock()
	return r
}

// flightRing is one connection's bounded frame history: the pinned
// Hello plus the most recent frames within the byte budget, each a
// verbatim copy of the wire bytes (12-byte header + payload, no length
// prefix).
type flightRing struct {
	rec    *FlightRecorder
	mu     sync.Mutex
	source uint32
	hello  []byte
	frames [][]byte
	bytes  int
	budget int
}

// capture copies one frame into the ring, evicting oldest frames while
// over budget. Nil-receiver safe so the unarmed path stays branch-only.
func (r *flightRing) capture(frame []byte) {
	if r == nil {
		return
	}
	cp := append([]byte(nil), frame...)
	r.mu.Lock()
	r.frames = append(r.frames, cp)
	r.bytes += len(cp)
	for r.bytes > r.budget && len(r.frames) > 1 {
		r.bytes -= len(r.frames[0])
		r.frames = r.frames[1:]
	}
	r.mu.Unlock()
}

// pinHello moves the most recently captured frame (the Hello that just
// established the sequenced discipline) into the pinned slot, so every
// dump replays with a valid handshake even after the ring wraps. Frames
// captured before the Hello are discarded — the receiver drops them
// whole too, so they have no place in a replayable stream.
func (r *flightRing) pinHello(source uint32) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.source = source
	if n := len(r.frames); n > 0 {
		r.hello = r.frames[n-1]
	}
	r.frames = r.frames[:0]
	r.bytes = 0
	r.mu.Unlock()
}

// snapshot renders the ring as a replayable wire stream: each frame
// re-prefixed with its 4-byte length, hello first.
func (r *flightRing) snapshot() (source uint32, blob []byte, frames int) {
	if r == nil {
		return 0, nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hello == nil && len(r.frames) == 0 {
		return r.source, nil, 0
	}
	size := 0
	if r.hello != nil {
		size += 4 + len(r.hello)
	}
	for _, fb := range r.frames {
		size += 4 + len(fb)
	}
	blob = make([]byte, 0, size)
	appendFrame := func(fb []byte) {
		blob = binary.BigEndian.AppendUint32(blob, uint32(len(fb)))
		blob = append(blob, fb...)
		frames++
	}
	if r.hello != nil {
		appendFrame(r.hello)
	}
	for _, fb := range r.frames {
		appendFrame(fb)
	}
	return r.source, blob, frames
}

// maxRetiredRings bounds how many closed connections' rings stay
// dumpable: anomalies that kill the connection (a poisoned frame, a
// fenced hello) dump after teardown, so the evidence must outlive it.
const maxRetiredRings = 4

// close retires the ring (connection teardown). Its frames stay
// available to the next few dumps — anomalies that end the connection
// are exactly the ones worth a post-mortem — bounded by
// maxRetiredRings.
func (r *flightRing) close() {
	if r == nil || r.rec == nil {
		return
	}
	r.rec.mu.Lock()
	delete(r.rec.rings, r)
	r.rec.retired = append(r.rec.retired, r)
	if len(r.rec.retired) > maxRetiredRings {
		r.rec.retired = r.rec.retired[len(r.rec.retired)-maxRetiredRings:]
	}
	r.rec.mu.Unlock()
}

// encodeFlightDump serializes: magic, uvarint meta length + meta JSON,
// uvarint section count, then per section uvarint blob length + blob.
func encodeFlightDump(meta *FlightMeta, blobs [][]byte) []byte {
	mj, _ := json.Marshal(meta)
	out := make([]byte, 0, len(FlightMagic)+10+len(mj)+64)
	out = append(out, FlightMagic...)
	out = binary.AppendUvarint(out, uint64(len(mj)))
	out = append(out, mj...)
	out = binary.AppendUvarint(out, uint64(len(blobs)))
	for _, b := range blobs {
		out = binary.AppendUvarint(out, uint64(len(b)))
		out = append(out, b...)
	}
	return out
}

// DecodeFlightDump parses a serialized dump into its meta header and
// per-connection wire streams (each ready to feed a FrameReader).
func DecodeFlightDump(dump []byte) (*FlightMeta, [][]byte, error) {
	if len(dump) < len(FlightMagic) || string(dump[:len(FlightMagic)]) != FlightMagic {
		return nil, nil, fmt.Errorf("transport: not a flight dump (bad magic)")
	}
	rest := dump[len(FlightMagic):]
	next := func(what string) ([]byte, error) {
		n, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < n {
			return nil, fmt.Errorf("transport: flight dump truncated at %s", what)
		}
		b := rest[k : k+int(n)]
		rest = rest[k+int(n):]
		return b, nil
	}
	mj, err := next("meta")
	if err != nil {
		return nil, nil, err
	}
	meta := new(FlightMeta)
	if err := json.Unmarshal(mj, meta); err != nil {
		return nil, nil, fmt.Errorf("transport: flight dump meta: %w", err)
	}
	nConns, k := binary.Uvarint(rest)
	if k <= 0 {
		return nil, nil, fmt.Errorf("transport: flight dump truncated at section count")
	}
	rest = rest[k:]
	blobs := make([][]byte, 0, nConns)
	for i := uint64(0); i < nConns; i++ {
		b, err := next("section")
		if err != nil {
			return nil, nil, err
		}
		blobs = append(blobs, b)
	}
	return meta, blobs, nil
}

// replayConn adapts a dump section to HandleConn: reads come from the
// recorded stream, ack writes vanish.
type replayConn struct{ io.Reader }

func (replayConn) Write(p []byte) (int, error) { return len(p), nil }

// ReplayFlightDump feeds every connection section of a serialized dump
// through the receiver, in dump order, discarding acks. The receiver
// should be fresh (or at least not already past the dump's sequence
// numbers, which dedup would discard). Deterministic: the same dump
// into the same receiver state yields the same engine state.
func ReplayFlightDump(rc *Receiver, dump []byte) (*FlightMeta, error) {
	meta, blobs, err := DecodeFlightDump(dump)
	if err != nil {
		return nil, err
	}
	for i, blob := range blobs {
		if err := rc.HandleConn(replayConn{bytes.NewReader(blob)}); err != nil {
			return meta, fmt.Errorf("transport: replay section %d: %w", i, err)
		}
	}
	return meta, nil
}
