package transport

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"jarvis/internal/obs"
	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// shipFlightEpochs runs a sequenced shipper over a pipe into rc for the
// given epochs (fixed workload seed, so the stream is reproducible) and
// waits for the connection to wind down. durMicros sizes the data
// epochs; the last three are empty, striding event time by 2s each so
// the 10s S2SProbe window closes even for short runs.
func shipFlightEpochs(t *testing.T, rc *Receiver, source uint32, epochs int, durMicros int64) {
	t.Helper()
	q := plan.S2SProbe()
	src, err := stream.NewPipeline(q, stream.DefaultOptions(4.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = src.SetLoadFactors([]float64{1, 1, 1})
	cfg := workload.DefaultPingConfig(77)
	cfg.Peers = 40 // few distinct pair keys keeps dumps and goldens small
	gen := workload.NewPingGen(cfg)

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- rc.HandleConn(server) }()
	ship := NewDurableShipper(source, 0)
	if err := ship.ConnectConn(client); err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= epochs; e++ {
		var batch telemetry.Batch
		if e <= epochs-3 {
			batch = gen.NextWindow(durMicros)
		} else {
			src.ObserveTime(int64(e) * 2_000_000)
		}
		if err := ship.ShipEpoch(src.RunEpoch(batch)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for ship.Acked() < uint64(epochs) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ship.Close()
	<-done
}

// renderRows canonicalizes an Advance batch: one line per row, sorted,
// so two engines fed the same epochs render byte-identical logs.
func renderRows(rows telemetry.Batch) []byte {
	lines := make([]string, 0, len(rows))
	for _, rec := range rows {
		row, ok := rec.Data.(*telemetry.AggRow)
		if !ok {
			lines = append(lines, fmt.Sprintf("t=%d other=%T", rec.Time, rec.Data))
			continue
		}
		lines = append(lines, fmt.Sprintf("w=%d key=%d/%q n=%d sum=%g min=%g max=%g",
			row.Window, row.Key.Num, row.Key.Str, row.Count, row.Sum, row.Min, row.Max))
	}
	sort.Strings(lines)
	var buf bytes.Buffer
	for _, l := range lines {
		buf.WriteString(l)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func flightTestReceiver(t *testing.T) *Receiver {
	t.Helper()
	engine, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	rc.RegisterSource(5)
	return rc
}

// TestFlightRecorderDumpAndReplay ships epochs with the recorder armed,
// takes a manual dump, and replays it through two fresh receivers: both
// must land in the same state as the original (and as each other).
func TestFlightRecorderDumpAndReplay(t *testing.T) {
	rc := flightTestReceiver(t)
	fl := NewFlightRecorder(rc.Counters())
	rc.SetFlightRecorder(fl)

	const epochs = 10
	shipFlightEpochs(t, rc, 5, epochs, 1_000_000)
	dump := fl.Trigger("manual:test")
	if dump == nil {
		t.Fatal("no dump produced with a live connection recorded")
	}
	want := renderRows(rc.Advance())
	if len(want) == 0 {
		t.Fatal("original run emitted no rows")
	}

	meta, blobs, err := DecodeFlightDump(dump)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Reason != "manual:test" || len(meta.Conns) != 1 || len(blobs) != 1 {
		t.Fatalf("meta = %+v (%d blobs)", meta, len(blobs))
	}
	if meta.Conns[0].Source != 5 || meta.Conns[0].Frames < epochs {
		t.Fatalf("conn meta = %+v, want source 5 with >= %d frames", meta.Conns[0], epochs)
	}

	var replayed [2][]byte
	for i := range replayed {
		fresh := flightTestReceiver(t)
		if _, err := ReplayFlightDump(fresh, dump); err != nil {
			t.Fatal(err)
		}
		if got := fresh.AppliedSeq(5); got != epochs {
			t.Fatalf("replay %d applied seq = %d, want %d", i, got, epochs)
		}
		replayed[i] = renderRows(fresh.Advance())
	}
	if !bytes.Equal(replayed[0], want) {
		t.Fatalf("replayed state differs from original:\n%s\nvs\n%s", replayed[0], want)
	}
	if !bytes.Equal(replayed[0], replayed[1]) {
		t.Fatal("two replays of the same dump disagree")
	}
}

// TestFlightRecorderBudgetKeepsHello shrinks the ring budget below the
// stream size: old frames must fall out, but the pinned Hello survives
// so the dump still opens with a valid handshake.
func TestFlightRecorderBudgetKeepsHello(t *testing.T) {
	rc := flightTestReceiver(t)
	fl := NewFlightRecorder(rc.Counters())
	fl.SetBudget(2048)
	rc.SetFlightRecorder(fl)

	shipFlightEpochs(t, rc, 5, 10, 1_000_000)
	dump := fl.Trigger("manual:budget")
	if dump == nil {
		t.Fatal("no dump")
	}
	meta, blobs, err := DecodeFlightDump(dump)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Conns[0].Bytes > 2048+4096 {
		t.Fatalf("ring bytes %d way over budget", meta.Conns[0].Bytes)
	}
	// The first frame of the section must still be the Hello: replaying
	// it through a fresh receiver must not fail with "epoch end before
	// hello" (trailing partial epochs simply never commit).
	fresh := flightTestReceiver(t)
	if _, err := ReplayFlightDump(fresh, dump); err != nil {
		t.Fatalf("replay of wrapped ring: %v", err)
	}
	_ = blobs
}

// TestFlightRecorderDecisionTrigger wires the recorder to the decision
// log: an anomalous decision kind must produce a dump, a second within
// the rate-limit window must not, and a benign kind never triggers.
func TestFlightRecorderDecisionTrigger(t *testing.T) {
	rc := flightTestReceiver(t)
	fl := NewFlightRecorder(rc.Counters())
	rc.SetFlightRecorder(fl)
	shipFlightEpochs(t, rc, 5, 4, 1_000_000)

	fl.OnDecision(obs.Decision{Kind: "load_factors"})
	if _, ok := fl.LastDump(); ok {
		t.Fatal("benign decision kind triggered a dump")
	}
	fl.OnDecision(obs.Decision{Kind: "degrade", Cause: "sustained_overload"})
	meta, ok := fl.LastDump()
	if !ok {
		t.Fatal("degrade decision did not trigger a dump")
	}
	if meta.Reason != "degrade:sustained_overload" {
		t.Fatalf("reason = %q", meta.Reason)
	}
	fl.OnDecision(obs.Decision{Kind: "fencing", Cause: "stale_term"})
	if m2, _ := fl.LastDump(); m2.Seq != meta.Seq {
		t.Fatal("rate limit did not suppress the second auto dump")
	}
	fl.SetMinInterval(0)
	fl.OnDecision(obs.Decision{Kind: "fencing", Cause: "stale_term"})
	if m3, _ := fl.LastDump(); m3.Seq == meta.Seq {
		t.Fatal("auto dump missing with rate limit disabled")
	}
}

// TestFlightDumpDecodeErrors exercises the parser against garbage and
// truncations.
func TestFlightDumpDecodeErrors(t *testing.T) {
	if _, _, err := DecodeFlightDump([]byte("not a dump")); err == nil {
		t.Fatal("bad magic accepted")
	}
	rc := flightTestReceiver(t)
	fl := NewFlightRecorder(rc.Counters())
	rc.SetFlightRecorder(fl)
	shipFlightEpochs(t, rc, 5, 3, 1_000_000)
	dump := fl.Trigger("manual:trunc")
	if dump == nil {
		t.Fatal("no dump")
	}
	for _, cut := range []int{1, 7, len(dump) / 2, len(dump) - 1} {
		if _, _, err := DecodeFlightDump(dump[:len(dump)-cut]); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
}

// TestFlightReplayRegression replays the committed regression dump
// through a fresh receiver and requires a byte-identical result log —
// the CI guard that wire decoding and epoch application stay
// deterministic for recorded anomaly streams. Regenerate both files
// with FLIGHT_REGEN=1 go test ./internal/transport -run FlightReplayRegression.
func TestFlightReplayRegression(t *testing.T) {
	dumpPath := filepath.Join("testdata", "flight", "regression.dump")
	goldenPath := filepath.Join("testdata", "flight", "regression.golden")

	if os.Getenv("FLIGHT_REGEN") != "" {
		rc := flightTestReceiver(t)
		fl := NewFlightRecorder(rc.Counters())
		rc.SetFlightRecorder(fl)
		shipFlightEpochs(t, rc, 5, 8, 25_000)
		dump := fl.Trigger("regen:regression")
		if dump == nil {
			t.Fatal("no dump to commit")
		}
		fresh := flightTestReceiver(t)
		if _, err := ReplayFlightDump(fresh, dump); err != nil {
			t.Fatal(err)
		}
		golden := renderRows(fresh.Advance())
		if err := os.MkdirAll(filepath.Dir(dumpPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dumpPath, dump, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, golden, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes) and %s (%d bytes)", dumpPath, len(dump), goldenPath, len(golden))
	}

	dump, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatalf("missing committed dump (regenerate with FLIGHT_REGEN=1): %v", err)
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	rc := flightTestReceiver(t)
	meta, err := ReplayFlightDump(rc, dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Conns) == 0 {
		t.Fatal("committed dump has no connection sections")
	}
	got := renderRows(rc.Advance())
	if !bytes.Equal(got, golden) {
		t.Fatalf("replay result log diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}
