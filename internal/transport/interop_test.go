package transport

import (
	"bytes"
	"testing"
	"time"

	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// interopRun drives one sequenced shipper→receiver run with the given
// wire-version caps and returns the advance results plus the negotiated
// peer version observed by the shipper.
func interopRun(t *testing.T, shipVer, recvVer uint32) (telemetry.Batch, uint32) {
	t.Helper()
	engine, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	rc.SetMaxVersion(recvVer)
	rc.RegisterSource(3)
	addr, stop := startTestServer(t, rc)
	defer stop()

	src, err := stream.NewPipeline(plan.S2SProbe(), stream.DefaultOptions(4.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = src.SetLoadFactors([]float64{1, 0.5, 1}) // drains at the filter stage too
	gen := workload.NewPingGen(workload.DefaultPingConfig(21))

	ship := NewDurableShipper(3, 64)
	ship.SetMaxVersion(shipVer)
	if err := ship.Connect(addr); err != nil {
		t.Fatal(err)
	}
	negotiated := ship.PeerVersion()

	const epochs = 14
	for e := 1; e <= epochs; e++ {
		var batch telemetry.Batch
		if e <= 11 {
			batch = gen.NextWindow(1_000_000)
		} else {
			src.ObserveTime(int64(e) * 1_000_000)
		}
		if err := ship.ShipEpoch(src.RunEpoch(batch)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for rc.AppliedSeq(3) < epochs {
		if time.Now().After(deadline) {
			t.Fatalf("applied %d/%d epochs", rc.AppliedSeq(3), epochs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return rc.Advance(), negotiated
}

func canonicalRows(t *testing.T, rows telemetry.Batch) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, rec := range rows {
		buf, err = wire.EncodeRecord(buf, rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// TestMixedVersionInterop proves version negotiation end to end: a v2
// shipper against a v1-capped receiver (downgrades, transcoding its
// columnar replay buffer), and a v1-capped shipper against a v2
// receiver, both produce result logs byte-identical to the all-v2 run.
func TestMixedVersionInterop(t *testing.T) {
	refRows, ver := interopRun(t, wire.WireV2, wire.WireV2)
	if ver != wire.WireV2 {
		t.Fatalf("v2↔v2 negotiated %d, want %d", ver, wire.WireV2)
	}
	if len(refRows) == 0 {
		t.Fatal("reference run produced no results — interop comparison is vacuous")
	}
	ref := canonicalRows(t, refRows)

	downRows, ver := interopRun(t, wire.WireV2, wire.WireV1)
	if ver != wire.WireV1 {
		t.Fatalf("v2 shipper with v1 receiver negotiated %d, want %d", ver, wire.WireV1)
	}
	if !bytes.Equal(ref, canonicalRows(t, downRows)) {
		t.Fatalf("v2→v1 downgrade diverged: %d rows vs %d reference rows", len(downRows), len(refRows))
	}

	upRows, ver := interopRun(t, wire.WireV1, wire.WireV2)
	if ver != wire.WireV1 {
		t.Fatalf("v1 shipper with v2 receiver negotiated %d, want %d", ver, wire.WireV1)
	}
	if !bytes.Equal(ref, canonicalRows(t, upRows)) {
		t.Fatalf("v1→v2 upgrade diverged: %d rows vs %d reference rows", len(upRows), len(refRows))
	}
}

// TestV1ReceiverRejectsColumnar pins the fail-fast path: a v1-capped
// receiver treats a columnar frame as a protocol error rather than
// misparsing it.
func TestV1ReceiverRejectsColumnar(t *testing.T) {
	engine, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	rc.SetMaxVersion(wire.WireV1)

	var buf bytes.Buffer
	fw := wire.NewFrameWriter(&buf)
	fw.SetColumnar(true)
	rec := telemetry.NewProbeRecord(&telemetry.PingProbe{Timestamp: 5, SrcIP: 1, DstIP: 2})
	if err := fw.WriteFrame(wire.Frame{StreamID: 0, Source: 3, Records: telemetry.Batch{rec}}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rc.HandleStream(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("v1 receiver accepted a columnar frame")
	}
	if got := rc.Counters().Get(CtrRecvErrors); got == 0 {
		t.Fatal("columnar rejection not counted as a receive error")
	}
}
