package transport

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"jarvis/internal/admission"
	"jarvis/internal/obs"
	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// TestOverloadChaosKillRestart is the overload robustness scenario end
// to end over real TCP: a gold tenant within budget and a silver tenant
// at ~10x its budget share a receiver; the SP is killed and restarted
// mid-run while the hot tenant is throttled and then degraded to sampled
// ingestion. Afterwards the gold tenant's results must be byte-identical
// to an exact replica fed the same batches (exactly once, zero loss),
// the degraded tenant's results must be within the recorded error bound,
// the tenant must promote back once pressure clears, and both
// transitions must appear in the decision trace.
func TestOverloadChaosKillRestart(t *testing.T) {
	obs.Decisions().Reset()
	engine, err := stream.NewSPEngine(plan.LogAnalytics())
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	// Silver budget: ~500 KB/s of logical payload — the hot tenant ships
	// ~600 KB per epoch, the gold one ~60 KB (weighted 2x on top).
	rc.SetAdmission(admission.NewController(admission.Config{
		RateBytesPerSec: 500_000, BurstBytes: 500_000,
		MaxDelayedEpochs: 64, DegradeAfter: 2, PromoteAfter: 2,
		DegradeRate: 0.25, MaxThrottle: 200 * time.Millisecond,
		Now: time.Now,
	}))
	ctrl := rc.Admission()
	addr, stop := startTestServer(t, rc)

	// Disjoint tenant populations, one per agent, so result keys map back
	// to the tenant each agent declared in its Hello.
	genVip := workload.NewLogGen(workload.LogConfig{
		Seed: 7, Tenants: 1, FirstTenant: 0, MatchRate: 1, IntervalMicros: 2000,
	})
	genHot := workload.NewLogGen(workload.LogConfig{
		Seed: 8, Tenants: 1, FirstTenant: 1, MatchRate: 1, IntervalMicros: 200,
	})

	vip := NewDurableShipper(1, 256)
	vip.SetIdentity("tenant-000", admission.Gold)
	hot := NewDurableShipper(2, 256)
	hot.SetIdentity("tenant-001", admission.Silver)
	if err := vip.ConnectConn(mustDial(t, addr)); err != nil {
		t.Fatal(err)
	}
	if err := hot.ConnectConn(mustDial(t, addr)); err != nil {
		t.Fatal(err)
	}

	epoch := func(src uint32, batch telemetry.Batch, wm int64) stream.EpochResult {
		return stream.EpochResult{Drains: []telemetry.Batch{batch}, Watermark: wm}
	}
	const heavy = 8
	var vipBatches, hotBatches []telemetry.Batch
	for e := 1; e <= heavy; e++ {
		wm := int64(e) * 1_000_000
		bv := genVip.NextWindow(1_000_000)
		bh := genHot.NextWindow(1_000_000)
		vipBatches = append(vipBatches, bv)
		hotBatches = append(hotBatches, bh)
		if err := vip.ShipEpoch(epoch(1, bv, wm)); err != nil {
			t.Fatal(err)
		}
		if err := hot.ShipEpoch(epoch(2, bh, wm)); err != nil {
			t.Fatal(err)
		}
		switch e {
		case 4:
			// Kill the SP mid-overload: the hot tenant has queued epochs and
			// a throttle hint in flight; both agents buffer while down.
			stop()
		case 6:
			addr, stop = startTestServer(t, rc)
			if err := vip.Connect(addr); err != nil {
				t.Fatal(err)
			}
			if err := hot.Connect(addr); err != nil {
				t.Fatal(err)
			}
		}
	}
	defer stop()

	// Sustained 10x pressure must have degraded the hot tenant (never the
	// gold one) and pushed a pacing hint back to its shipper.
	deadline := time.Now().Add(30 * time.Second)
	for ctrl.DegradedRate(2) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hot tenant never degraded under sustained overload")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for hot.ThrottleHint() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hot shipper never received a throttle hint")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ctrl.DegradedRate(1) != 0 {
		t.Fatal("gold tenant must never degrade")
	}

	// Pressure clears: the hot agent's epochs shrink to empty. Its queue
	// drains at the sampled cost and the tenant promotes back to exact.
	tiny := heavy
	for ctrl.DegradedRate(2) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("hot tenant never promoted back after pressure cleared")
		}
		tiny++
		if err := hot.ShipEpoch(epoch(2, nil, int64(tiny)*1_000_000)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Final epochs push the watermark past the 10 s window so every
	// result flushes.
	const flushWM = int64(1) << 40
	if err := vip.ShipEpoch(epoch(1, nil, flushWM)); err != nil {
		t.Fatal(err)
	}
	if err := hot.ShipEpoch(epoch(2, nil, flushWM)); err != nil {
		t.Fatal(err)
	}
	var rows telemetry.Batch
	for rc.AppliedSeq(1) < vip.Seq() || rc.AppliedSeq(2) < hot.Seq() {
		if time.Now().After(deadline) {
			t.Fatalf("frontiers stuck at vip=%d/%d hot=%d/%d",
				rc.AppliedSeq(1), vip.Seq(), rc.AppliedSeq(2), hot.Seq())
		}
		rows = append(rows, rc.Advance()...)
		time.Sleep(10 * time.Millisecond)
	}
	rows = append(rows, rc.Advance()...)
	if vip.Dropped() != 0 || hot.Dropped() != 0 {
		t.Fatalf("replay buffers evicted epochs (vip %d, hot %d)", vip.Dropped(), hot.Dropped())
	}

	// Exact replica fed the very same batches, no transport, no admission.
	exact, err := stream.NewSPEngine(plan.LogAnalytics())
	if err != nil {
		t.Fatal(err)
	}
	exact.RegisterSource(1)
	exact.RegisterSource(2)
	for _, b := range vipBatches {
		if err := exact.Ingest(0, b); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range hotBatches {
		if err := exact.Ingest(0, b); err != nil {
			t.Fatal(err)
		}
	}
	exact.ObserveWatermark(1, flushWM)
	exact.ObserveWatermark(2, flushWM)
	want := exact.Advance()

	got := rowTotals(rows)
	wantTotals := rowTotals(want)
	var hotGot, hotWant float64
	for key, w := range wantTotals {
		g := got[key]
		switch {
		case strings.HasPrefix(key, "tenant-000|"):
			// The un-degraded tenant rode through throttling, kill and
			// restart exactly once: results are byte-identical.
			if g != w {
				t.Fatalf("gold key %q: got %.0f, exact %.0f (must be identical)", key, g, w)
			}
		case strings.HasPrefix(key, "tenant-001|"):
			hotGot += g
			hotWant += w
		}
	}
	if hotWant == 0 {
		t.Fatal("no hot-tenant results to compare")
	}
	relErr := math.Abs(hotGot-hotWant) / hotWant
	bound := 3 * admission.RelativeErrorBound(0.25, int64(hotWant))
	if bound < 0.10 {
		bound = 0.10
	}
	if relErr > bound {
		t.Fatalf("degraded tenant error %.2f%% exceeds bound %.2f%% (got %.0f, exact %.0f)",
			100*relErr, 100*bound, hotGot, hotWant)
	}

	// Both transitions landed in the decision trace, for the hot tenant
	// only.
	var sawDegrade, sawPromote bool
	for _, d := range obs.Decisions().Recent(512) {
		switch d.Kind {
		case "degrade":
			if strings.Contains(d.Detail, "tenant-000") {
				t.Fatalf("gold tenant degraded: %+v", d)
			}
			sawDegrade = sawDegrade || strings.Contains(d.Detail, "tenant-001")
		case "promote":
			sawPromote = sawPromote || strings.Contains(d.Detail, "tenant-001")
		}
	}
	if !sawDegrade || !sawPromote {
		t.Fatalf("decision trace missing transitions (degrade %v, promote %v)", sawDegrade, sawPromote)
	}
	_ = vip.Close()
	_ = hot.Close()
}

// TestOverloadChaosPressureGated closes the pressure loop end to end
// over real TCP: the admission controller's Pressure is a live
// obs.QuantileWindow p99 over the SP's own ingest-stage latency
// histogram — the exact wiring jarvis-sp runs. A hot tenant at ~3x its
// budget must degrade only once the *measured* ingest p99 is over
// threshold, promote back after traffic stops and the window clears,
// and leave both transitions in the decision trace.
func TestOverloadChaosPressureGated(t *testing.T) {
	obs.Decisions().Reset()
	engine, err := stream.NewSPEngine(plan.LogAnalytics())
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	qw := obs.NewQuantileWindow(obs.StageHistogram(obs.StageIngest),
		time.Second, 100*time.Millisecond)
	qw.Tick()               // baseline snapshot: ignore ingest history from earlier tests
	const threshold = 25e-6 // smallest stage bucket: any real log ingest exceeds it
	rc.SetAdmission(admission.NewController(admission.Config{
		RateBytesPerSec: 400_000, BurstBytes: 400_000,
		MaxDelayedEpochs: 64, DegradeAfter: 2, PromoteAfter: 3,
		DegradeRate: 0.25, MaxThrottle: 200 * time.Millisecond,
		Pressure: qw.P99, PressureThreshold: threshold,
		Now: time.Now,
	}))
	ctrl := rc.Admission()
	addr, stop := startTestServer(t, rc)
	defer stop()

	// Capture the measured pressure at each transition, from the decision
	// notify hook (fires synchronously at emit time).
	var mu sync.Mutex
	transitions := map[string]float64{}
	obs.Decisions().SetNotify(func(d obs.Decision) {
		if d.Kind == "degrade" || d.Kind == "promote" {
			mu.Lock()
			if _, seen := transitions[d.Kind]; !seen {
				transitions[d.Kind] = qw.P99()
			}
			mu.Unlock()
		}
	})
	defer obs.Decisions().SetNotify(nil)

	gen := workload.NewLogGen(workload.LogConfig{
		Seed: 9, Tenants: 1, FirstTenant: 2, MatchRate: 1, IntervalMicros: 200,
	})
	hot := NewDurableShipper(3, 256)
	hot.SetIdentity("tenant-002", admission.Silver)
	if err := hot.ConnectConn(mustDial(t, addr)); err != nil {
		t.Fatal(err)
	}
	epoch := func(batch telemetry.Batch, wm int64) stream.EpochResult {
		return stream.EpochResult{Drains: []telemetry.Batch{batch}, Watermark: wm}
	}

	// Heavy phase: a sustained hot stream (~300 KB epochs at 5/s against
	// a 400 KB/s budget). The gate only trips once drains put real
	// ingest latencies into the window, so keep shipping until the
	// controller reacts — every arrival is a decision point.
	deadline := time.Now().Add(30 * time.Second)
	wm := int64(0)
	for ctrl.DegradedRate(3) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hot tenant never degraded with the pressure gate armed")
		}
		wm += 500_000
		if err := hot.ShipEpoch(epoch(gen.NextWindow(500_000), wm)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	mu.Lock()
	degradeP99, ok := transitions["degrade"]
	mu.Unlock()
	if !ok {
		t.Fatal("degrade transition not observed by the notify hook")
	}
	if degradeP99 <= threshold {
		t.Fatalf("degraded while measured ingest p99 (%.0fus) was under the %.0fus gate",
			degradeP99*1e6, threshold*1e6)
	}

	// Calm phase: traffic stops; empty keepalive epochs let the queue
	// drain and the latency window age out, and the tenant promotes.
	for ctrl.DegradedRate(3) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("hot tenant never promoted after pressure cleared")
		}
		wm += 1_000_000
		if err := hot.ShipEpoch(epoch(nil, wm)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// With traffic stopped the measured signal itself must return below
	// the gate once the heavy ingests age out of the window.
	for qw.P99() > threshold {
		if time.Now().After(deadline) {
			t.Fatalf("measured ingest p99 stuck at %.0fus after the run", qw.P99()*1e6)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Frontier catches up: nothing was lost to the gate.
	for rc.AppliedSeq(3) < hot.Seq() {
		if time.Now().After(deadline) {
			t.Fatalf("frontier stuck at %d/%d", rc.AppliedSeq(3), hot.Seq())
		}
		rc.Advance()
		time.Sleep(10 * time.Millisecond)
	}
	if hot.Dropped() != 0 {
		t.Fatalf("replay buffer evicted %d epochs", hot.Dropped())
	}

	var sawDegrade, sawPromote bool
	for _, d := range obs.Decisions().Recent(512) {
		if !strings.Contains(d.Detail, "tenant-002") {
			continue
		}
		switch d.Kind {
		case "degrade":
			sawDegrade = true
		case "promote":
			sawPromote = true
		}
	}
	if !sawDegrade || !sawPromote {
		t.Fatalf("decision trace missing transitions (degrade %v, promote %v)", sawDegrade, sawPromote)
	}
	_ = hot.Close()
}
