package transport

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// startTestServer spins a receiver+server on loopback and returns the
// address plus a stopper.
func startTestServer(t *testing.T, rc *Receiver) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	srv := NewServer(rc)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ctx, ln)
	}()
	return ln.Addr().String(), func() {
		cancel()
		_ = srv.Close()
		wg.Wait()
	}
}

// TestDurableShipperReconnectExactlyOnce runs the sequenced protocol
// across repeated server kills with shipping and acking racing the
// reconnects (the -race target for the reconnect paths): every epoch
// must be applied exactly once, in order, despite replays.
func TestDurableShipperReconnectExactlyOnce(t *testing.T) {
	q := plan.S2SProbe()
	engine, err := stream.NewSPEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	rc.RegisterSource(9)
	addr, stop := startTestServer(t, rc)

	src, err := stream.NewPipeline(q, stream.DefaultOptions(4.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = src.SetLoadFactors([]float64{1, 1, 1})
	gen := workload.NewPingGen(workload.DefaultPingConfig(33))
	ship := NewDurableShipper(9, 128)
	if err := ship.ConnectConn(mustDial(t, addr)); err != nil {
		t.Fatal(err)
	}

	const epochs = 24
	for e := 1; e <= epochs; e++ {
		var batch telemetry.Batch
		if e <= 10 {
			batch = gen.NextWindow(1_000_000)
		} else {
			src.ObserveTime(int64(e) * 1_000_000)
		}
		if err := ship.ShipEpoch(src.RunEpoch(batch)); err != nil {
			t.Fatal(err)
		}
		switch e {
		case 6, 14:
			// Kill the server mid-stream; epochs buffer while down.
			stop()
		case 9, 17:
			// New server over the same engine: replay must dedup by seq.
			addr, stop = startTestServer(t, rc)
			if err := ship.Connect(addr); err != nil {
				t.Fatal(err)
			}
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for rc.AppliedSeq(9) < epochs {
		if time.Now().After(deadline) {
			t.Fatalf("applied %d/%d epochs", rc.AppliedSeq(9), epochs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := rc.Counters().Get(CtrEpochsApplied); got != epochs {
		t.Fatalf("epochs applied = %d, want %d (dedup broken?)", got, epochs)
	}
	if ship.Dropped() != 0 {
		t.Fatalf("replay buffer evicted %d epochs", ship.Dropped())
	}
	if rows := rc.Advance(); len(rows) == 0 {
		t.Fatal("no results after reconnect run")
	}
	// Acks flow once the run settles: the shipper's pending buffer drains.
	for ship.Acked() < epochs {
		if time.Now().After(deadline) {
			t.Fatalf("acked %d/%d epochs", ship.Acked(), epochs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
}

func mustDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestDurableShipperConcurrentShipAndReconnect races ShipEpoch against
// Connect/Close cycles from another goroutine (pure -race fodder; the
// assertions are liveness, not totals, since epochs may legitimately
// drop from the bounded buffer while disconnected for long stretches).
func TestDurableShipperConcurrentShipAndReconnect(t *testing.T) {
	engine, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	rc.RegisterSource(5)
	addr, stop := startTestServer(t, rc)
	defer func() { stop() }()

	ship := NewDurableShipper(5, 16)
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = ship.Connect(addr)
			time.Sleep(time.Millisecond)
			_ = ship.Close()
		}
	}()

	src, err := stream.NewPipeline(plan.S2SProbe(), stream.DefaultOptions(4.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = src.SetLoadFactors([]float64{1, 1, 1})
	gen := workload.NewPingGen(workload.DefaultPingConfig(44))
	for e := 0; e < 30; e++ {
		if err := ship.ShipEpoch(src.RunEpoch(gen.NextWindow(100_000))); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if ship.Seq() != 30 {
		t.Fatalf("seq = %d, want 30", ship.Seq())
	}
}

// TestReceiverHelloAckRoundTrip pins the handshake: a second connection
// for the same source resumes from the durable frontier announced in the
// hello ack.
func TestReceiverHelloAckRoundTrip(t *testing.T) {
	engine, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	rc.RegisterSource(2)
	addr, stop := startTestServer(t, rc)
	defer stop()

	src, err := stream.NewPipeline(plan.S2SProbe(), stream.DefaultOptions(4.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = src.SetLoadFactors([]float64{1, 1, 1})
	gen := workload.NewPingGen(workload.DefaultPingConfig(11))

	ship := NewDurableShipper(2, 32)
	if err := ship.Connect(addr); err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= 4; e++ {
		if err := ship.ShipEpoch(src.RunEpoch(gen.NextWindow(1_000_000))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for ship.Acked() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("acked %d/4", ship.Acked())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A reconnecting shipper with a stale buffer replays; the receiver
	// dedups and re-acks the frontier.
	stale := NewDurableShipper(2, 32)
	seq, acked, pending := ship.State()
	stale.RestoreState(seq, 0, pending) // pretend no ack ever arrived
	_ = acked
	if err := stale.Connect(addr); err != nil {
		t.Fatal(err)
	}
	for stale.Acked() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("stale shipper acked %d/4", stale.Acked())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := rc.Counters().Get(CtrEpochsApplied); got != 4 {
		t.Fatalf("applied = %d, want 4", got)
	}
}
