package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Server accepts agent connections on a TCP listener and feeds them into
// a Receiver.
type Server struct {
	rc *Receiver
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a receiver; call Serve with a listener.
func NewServer(rc *Receiver) *Server {
	return &Server{rc: rc, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener closes or ctx is
// cancelled. Each connection is handled on its own goroutine.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		<-ctx.Done()
		_ = ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		s.track(conn)
		s.rc.counters.Inc(CtrConnsAccepted)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer s.rc.counters.Inc(CtrConnsClosed)
			if err := s.rc.HandleConn(conn); err != nil {
				// The counter records what the old code dropped silently;
				// the connection is closed and the agent will reconnect.
				s.rc.counters.Inc(CtrConnErrors)
			}
		}()
	}
}

func (s *Server) track(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns[c] = struct{}{}
}

func (s *Server) untrack(c net.Conn) {
	_ = c.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// Close shuts the listener and all live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Dial connects an agent to an SP address and returns a shipper bound to
// the connection plus a closer.
func Dial(source uint32, addr string) (*Shipper, func() error, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewShipper(source, conn), conn.Close, nil
}
