package transport

import (
	"testing"
	"time"

	"jarvis/internal/obs"
	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// TestEpochTraceE2ETCP is the cross-process tracing acceptance test: a
// real shipper over real TCP, with the receiver joining the agent's
// EpochEnd trace extension with its own decode/wait/ingest/ack stamps.
// Every committed epoch must yield a completed EpochTrace whose derived
// segments sum *exactly* to its end-to-end latency (the telescoping
// identity, here verified against live two-process stamps rather than
// constructed values), with the e2e latency bounded by the wall time
// the test itself observed around the run.
func TestEpochTraceE2ETCP(t *testing.T) {
	obs.Traces().Reset()
	engine, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	rc.RegisterSource(9)
	addr, stop := startTestServer(t, rc)
	defer stop()

	src, err := stream.NewPipeline(plan.S2SProbe(), stream.DefaultOptions(4.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = src.SetLoadFactors([]float64{1, 1, 1})
	cfg := workload.DefaultPingConfig(99)
	cfg.Peers = 40
	gen := workload.NewPingGen(cfg)

	started := time.Now()
	ship := NewDurableShipper(9, 0)
	if err := ship.ConnectConn(mustDial(t, addr)); err != nil {
		t.Fatal(err)
	}
	const epochs = 12
	for e := 1; e <= epochs; e++ {
		var batch telemetry.Batch
		if e <= epochs-3 {
			batch = gen.NextWindow(250_000)
		} else {
			src.ObserveTime(int64(e) * 2_000_000)
		}
		if err := ship.ShipEpoch(src.RunEpoch(batch)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for obs.Traces().Total() < epochs {
		if time.Now().After(deadline) {
			t.Fatalf("joined %d of %d traces", obs.Traces().Total(), epochs)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(started).Microseconds()
	_ = ship.Close()

	byEpoch := map[uint64]obs.EpochTrace{}
	for _, tr := range obs.Traces().Recent(0) {
		byEpoch[tr.Epoch] = tr
	}
	for e := uint64(1); e <= epochs; e++ {
		tr, ok := byEpoch[e]
		if !ok {
			t.Fatalf("epoch %d committed but has no completed trace", e)
		}
		if tr.Source != 9 {
			t.Fatalf("epoch %d: source %d, want 9", e, tr.Source)
		}
		if want := uint64(9)<<40 | e; tr.TraceID != want {
			t.Fatalf("epoch %d: trace id %#x, want %#x", e, tr.TraceID, want)
		}
		segs := tr.Segments()
		var sum int64
		for _, s := range segs {
			sum += s
		}
		if sum != tr.E2EMicros() {
			t.Fatalf("epoch %d: segments sum %dus != e2e %dus (%+v)", e, sum, tr.E2EMicros(), tr)
		}
		if tr.E2EMicros() <= 0 || tr.E2EMicros() > elapsed {
			t.Fatalf("epoch %d: e2e %dus outside the observed window (0, %dus]", e, tr.E2EMicros(), elapsed)
		}
		// Same machine, same clock: every non-residual segment is a
		// measured duration or a difference of ordered stamps and must be
		// non-negative; the ship residual absorbs scheduling slack but
		// cannot be meaningfully negative on loopback.
		for i, name := range obs.TraceSegments {
			if name == "ship" || name == "ack" {
				continue
			}
			if segs[i] < 0 {
				t.Fatalf("epoch %d: segment %s negative (%dus): %+v", e, name, segs[i], tr)
			}
		}
		// The ship residual can go negative on loopback because decode is
		// pipelined: data frames decode while the shipper is still sealing
		// the EpochEnd, so (arrival − sent) undercounts the decode time
		// already spent. It is bounded below by −decode (EpochEnd itself
		// always arrives after it was sealed on a shared clock).
		if segs[3] < -segs[4]-1000 {
			t.Fatalf("epoch %d: ship residual %dus below -decode (%dus)", e, segs[3], segs[4])
		}
	}
}
