// Traffic recorder: full-fidelity capture of wire-v2 epoch streams. The
// flight recorder (flight.go) keeps a bounded ring for anomaly
// post-mortems; the traffic recorder instead writes *every* sequenced
// frame of every connection to a stream, so a live run becomes a
// replayable corpus — feed the capture back through a fresh receiver
// (ReplayTraffic) and the result log reproduces byte-for-byte, or split
// a connection into per-epoch runs (TrafficConn.Epochs) and use it as a
// deterministic arrival source in the cluster sim.
package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"jarvis/internal/obs"
	"jarvis/internal/wire"
)

// TrafficMagic starts every traffic capture stream.
const TrafficMagic = "JARVISTR1\n"

// Traffic recorder metric names (default registry).
const (
	CtrTrafficConns  = "traffic_conns_recorded"
	CtrTrafficFrames = "traffic_frames_recorded"
	CtrTrafficBytes  = "traffic_bytes_recorded"
	CtrTrafficEpochs = "traffic_epochs_recorded"
)

// MaxTrafficFrame bounds a single recorded frame on read-back; it
// matches the wire reader's own frame bound.
const MaxTrafficFrame = wire.MaxFrameSize

// TrafficRecorder appends every captured frame to w as
// (uvarint connID, uvarint frameLen, frame bytes) records after a magic
// header. Connection ids are assigned in first-tap order; frames of
// concurrent connections interleave in arrival order but each
// connection's own frames stay ordered, which is all replay needs.
// The recorder is safe for concurrent use; the first write error is
// sticky and surfaces via Err.
type TrafficRecorder struct {
	mu       sync.Mutex
	w        io.Writer
	nextConn uint64
	wroteHdr bool
	err      error

	ctrConns  obs.Counter
	ctrFrames obs.Counter
	ctrBytes  obs.Counter
	ctrEpochs obs.Counter
}

// NewTrafficRecorder arms a recorder writing to w (typically a buffered
// file). Install on a receiver with Receiver.SetTrafficRecorder before
// serving connections.
func NewTrafficRecorder(w io.Writer) *TrafficRecorder {
	reg := obs.Default()
	return &TrafficRecorder{
		w:         w,
		ctrConns:  reg.Counter(CtrTrafficConns),
		ctrFrames: reg.Counter(CtrTrafficFrames),
		ctrBytes:  reg.Counter(CtrTrafficBytes),
		ctrEpochs: reg.Counter(CtrTrafficEpochs),
	}
}

// Err returns the first write error, if any (capture stops at it).
func (t *TrafficRecorder) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// newTap registers a connection and returns its per-connection capture
// handle. Nil-receiver safe, mirroring the flight ring.
func (t *TrafficRecorder) newTap() *trafficTap {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	id := t.nextConn
	t.nextConn++
	t.mu.Unlock()
	t.ctrConns.Inc()
	return &trafficTap{rec: t, id: id}
}

// trafficTap is one connection's capture handle.
type trafficTap struct {
	rec *TrafficRecorder
	id  uint64
	hdr [2 * binary.MaxVarintLen64]byte
}

// capture appends one frame (12-byte header + payload, as returned by
// FrameReader.RawFrame) to the capture stream.
func (tp *trafficTap) capture(frame []byte) {
	if tp == nil || len(frame) == 0 {
		return
	}
	t := tp.rec
	n := binary.PutUvarint(tp.hdr[:], tp.id)
	n += binary.PutUvarint(tp.hdr[n:], uint64(len(frame)))
	t.mu.Lock()
	if t.err == nil && !t.wroteHdr {
		if _, err := io.WriteString(t.w, TrafficMagic); err != nil {
			t.err = err
		}
		t.wroteHdr = true
	}
	if t.err == nil {
		if _, err := t.w.Write(tp.hdr[:n]); err != nil {
			t.err = err
		} else if _, err := t.w.Write(frame); err != nil {
			t.err = err
		}
	}
	t.mu.Unlock()
	t.ctrFrames.Inc()
	t.ctrBytes.Add(int64(len(frame)))
}

// noteEpoch counts one committed epoch observed on a tapped connection.
func (tp *trafficTap) noteEpoch() {
	if tp == nil {
		return
	}
	tp.rec.ctrEpochs.Inc()
}

// TrafficConn is one recorded connection's ordered frame stream.
type TrafficConn struct {
	// ID is the capture-order connection id.
	ID uint64
	// Frames are the connection's raw wire frames (12-byte header +
	// payload each, no length prefix), in arrival order. They alias the
	// capture buffer.
	Frames [][]byte
}

// WireStream renders the connection as a replayable byte stream: each
// frame re-prefixed with its 4-byte length, ready for a FrameReader or
// Receiver.HandleConn.
func (c *TrafficConn) WireStream() []byte {
	size := 0
	for _, f := range c.Frames {
		size += 4 + len(f)
	}
	out := make([]byte, 0, size)
	for _, f := range c.Frames {
		out = binary.BigEndian.AppendUint32(out, uint32(len(f)))
		out = append(out, f...)
	}
	return out
}

// ReadTrafficCapture parses a capture into per-connection streams, in
// first-seen order. The frames alias data.
func ReadTrafficCapture(data []byte) ([]*TrafficConn, error) {
	if len(data) < len(TrafficMagic) || string(data[:len(TrafficMagic)]) != TrafficMagic {
		return nil, fmt.Errorf("transport: not a traffic capture (bad magic)")
	}
	rest := data[len(TrafficMagic):]
	var (
		order []*TrafficConn
		byID  = map[uint64]*TrafficConn{}
	)
	for len(rest) > 0 {
		id, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, fmt.Errorf("transport: traffic capture truncated at conn id")
		}
		rest = rest[k:]
		n, k := binary.Uvarint(rest)
		if k <= 0 || n > MaxTrafficFrame || uint64(len(rest)-k) < n {
			return nil, fmt.Errorf("transport: traffic capture truncated at frame")
		}
		frame := rest[k : k+int(n)]
		rest = rest[k+int(n):]
		c := byID[id]
		if c == nil {
			c = &TrafficConn{ID: id}
			byID[id] = c
			order = append(order, c)
		}
		c.Frames = append(c.Frames, frame)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("transport: traffic capture holds no frames")
	}
	return order, nil
}

// ReplayTraffic feeds every recorded connection through the receiver in
// capture order, discarding acks. The receiver should be fresh (or at
// least behind the capture's sequence numbers). Deterministic: the same
// capture into the same receiver state yields the same engine state —
// which is what turns a live run's traffic into a regression corpus.
func ReplayTraffic(rc *Receiver, capture []byte) (conns int, err error) {
	cs, err := ReadTrafficCapture(capture)
	if err != nil {
		return 0, err
	}
	for i, c := range cs {
		if err := rc.HandleConn(replayConn{bytes.NewReader(c.WireStream())}); err != nil {
			return i, fmt.Errorf("transport: replay conn %d: %w", c.ID, err)
		}
	}
	return len(cs), nil
}

// Epochs splits the connection into its Hello handshake and per-epoch
// frame runs: each run is the frames of one epoch ending with its
// EpochEnd control frame. Control records are row-encoded, so the split
// decodes only control frames (identified by stream id) and leaves data
// frames untouched. Trailing frames after the last EpochEnd (an epoch
// cut off mid-capture) are dropped — a replay source can only use whole
// epochs. The sim replays a recorded connection by flushing hello + one
// run per virtual epoch.
func (c *TrafficConn) Epochs() (hello []byte, epochs [][][]byte, err error) {
	var run [][]byte
	for _, f := range c.Frames {
		if binary.BigEndian.Uint32(f[0:4]) != wire.ControlStreamID {
			if hello != nil {
				run = append(run, f)
			}
			continue
		}
		isHello, isEnd, derr := classifyControlFrame(f)
		if derr != nil {
			return nil, nil, derr
		}
		switch {
		case isHello:
			if hello == nil {
				hello = f
			}
			// A re-hello mid-stream restates the handshake; the frames
			// keep accumulating into the current run.
		case isEnd:
			if hello == nil {
				return nil, nil, fmt.Errorf("transport: epoch end before hello in capture")
			}
			run = append(run, f)
			epochs = append(epochs, run)
			run = nil
		}
	}
	if hello == nil {
		return nil, nil, fmt.Errorf("transport: no hello in recorded connection")
	}
	return hello, epochs, nil
}

// DecodeControl decodes a recorded control frame's Hello and EpochEnd
// records (either may be nil; acks never appear in an agent→SP capture
// but are tolerated). Replay tooling uses it to identify handshakes and
// epoch boundaries without touching data frames.
func DecodeControl(frame []byte) (hello *wire.Hello, end *wire.EpochEnd, err error) {
	if len(frame) < 12 {
		return nil, nil, fmt.Errorf("transport: short control frame")
	}
	count := binary.BigEndian.Uint32(frame[8:12])
	off := 12
	for i := uint32(0); i < count; i++ {
		rec, k, derr := wire.DecodeRecord(frame[off:])
		if derr != nil {
			return nil, nil, fmt.Errorf("transport: control frame record: %w", derr)
		}
		off += k
		switch c := rec.Data.(type) {
		case *wire.Hello:
			if hello == nil {
				hello = c
			}
		case *wire.EpochEnd:
			if end == nil {
				end = c
			}
		}
	}
	return hello, end, nil
}

// classifyControlFrame reports whether a control frame carries a Hello
// or an EpochEnd.
func classifyControlFrame(frame []byte) (isHello, isEnd bool, err error) {
	hello, end, err := DecodeControl(frame)
	return hello != nil, end != nil, err
}

// HelloSource returns the source id the connection's handshake declared.
func (c *TrafficConn) HelloSource() (uint32, error) {
	hello, _, err := c.Epochs()
	if err != nil {
		return 0, err
	}
	h, _, err := DecodeControl(hello)
	if err != nil {
		return 0, err
	}
	if h == nil {
		return 0, fmt.Errorf("transport: no hello record in frame")
	}
	return h.Source, nil
}
