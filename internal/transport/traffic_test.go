package transport

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"jarvis/internal/obs"
)

// recordTrafficEpochs ships a fixed reproducible stream into a fresh
// receiver with the traffic recorder armed and returns the capture plus
// the original receiver for state comparison.
func recordTrafficEpochs(t *testing.T, epochs int, durMicros int64) ([]byte, *Receiver) {
	t.Helper()
	rc := flightTestReceiver(t)
	var buf bytes.Buffer
	tr := NewTrafficRecorder(&buf)
	rc.SetTrafficRecorder(tr)
	shipFlightEpochs(t, rc, 5, epochs, durMicros)
	if err := tr.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}
	return buf.Bytes(), rc
}

// TestTrafficRecordAndReplay is the round trip: record a full sequenced
// run, replay the capture through two fresh receivers, and require both
// to land in exactly the original engine state.
func TestTrafficRecordAndReplay(t *testing.T) {
	epochsBefore := obs.Default().Counter(CtrTrafficEpochs).Value()
	const epochs = 10
	capture, rc := recordTrafficEpochs(t, epochs, 1_000_000)
	if got := obs.Default().Counter(CtrTrafficEpochs).Value() - epochsBefore; got != epochs {
		t.Fatalf("traffic_epochs_recorded delta = %d, want %d", got, epochs)
	}
	want := renderRows(rc.Advance())
	if len(want) == 0 {
		t.Fatal("original run emitted no rows")
	}

	conns, err := ReadTrafficCapture(capture)
	if err != nil {
		t.Fatal(err)
	}
	if len(conns) != 1 || len(conns[0].Frames) < epochs {
		t.Fatalf("capture parsed to %d conns (%d frames)", len(conns), len(conns[0].Frames))
	}
	var replayed [2][]byte
	for i := range replayed {
		fresh := flightTestReceiver(t)
		n, err := ReplayTraffic(fresh, capture)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("replayed %d conns, want 1", n)
		}
		if got := fresh.AppliedSeq(5); got != epochs {
			t.Fatalf("replay %d applied seq = %d, want %d", i, got, epochs)
		}
		replayed[i] = renderRows(fresh.Advance())
	}
	if !bytes.Equal(replayed[0], want) {
		t.Fatalf("replayed state differs from original:\n%s\nvs\n%s", replayed[0], want)
	}
	if !bytes.Equal(replayed[0], replayed[1]) {
		t.Fatal("two replays of the same capture disagree")
	}
}

// TestTrafficEpochSplit slices a recorded connection into per-epoch
// frame runs and replays a prefix: the receiver must apply exactly the
// replayed epochs. This is the sim's replay-source path.
func TestTrafficEpochSplit(t *testing.T) {
	const epochs = 10
	capture, _ := recordTrafficEpochs(t, epochs, 1_000_000)
	conns, err := ReadTrafficCapture(capture)
	if err != nil {
		t.Fatal(err)
	}
	c := conns[0]
	src, err := c.HelloSource()
	if err != nil {
		t.Fatal(err)
	}
	if src != 5 {
		t.Fatalf("hello source = %d, want 5", src)
	}
	hello, runs, err := c.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if hello == nil || len(runs) != epochs {
		t.Fatalf("split: hello=%v runs=%d, want %d", hello != nil, len(runs), epochs)
	}
	// Replay the handshake plus the first four epochs only.
	part := &TrafficConn{Frames: [][]byte{hello}}
	for _, run := range runs[:4] {
		part.Frames = append(part.Frames, run...)
	}
	fresh := flightTestReceiver(t)
	if err := fresh.HandleConn(replayConn{bytes.NewReader(part.WireStream())}); err != nil {
		t.Fatal(err)
	}
	if got := fresh.AppliedSeq(5); got != 4 {
		t.Fatalf("partial replay applied seq = %d, want 4", got)
	}
}

// TestTrafficCaptureDecodeErrors exercises the parser against garbage
// and truncations.
func TestTrafficCaptureDecodeErrors(t *testing.T) {
	if _, err := ReadTrafficCapture([]byte("not a capture")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadTrafficCapture([]byte(TrafficMagic)); err == nil {
		t.Fatal("empty capture accepted")
	}
	capture, _ := recordTrafficEpochs(t, 3, 1_000_000)
	for _, cut := range []int{1, 7, len(capture) / 2} {
		if _, err := ReadTrafficCapture(capture[:len(capture)-cut]); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
}

// TestTrafficReplayRegression replays the committed full-run capture and
// requires a byte-identical result log — the CI guard that the wire-v2
// format, columnar decode, and epoch application stay deterministic for
// complete recorded streams (the flight regression covers only the
// anomaly-ring subset). Regenerate both files with
// TRAFFIC_REGEN=1 go test ./internal/transport -run TrafficReplayRegression.
func TestTrafficReplayRegression(t *testing.T) {
	capPath := filepath.Join("testdata", "traffic", "regression.capture")
	goldenPath := filepath.Join("testdata", "traffic", "regression.golden")

	if os.Getenv("TRAFFIC_REGEN") != "" {
		capture, _ := recordTrafficEpochs(t, 8, 25_000)
		fresh := flightTestReceiver(t)
		if _, err := ReplayTraffic(fresh, capture); err != nil {
			t.Fatal(err)
		}
		golden := renderRows(fresh.Advance())
		if err := os.MkdirAll(filepath.Dir(capPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(capPath, capture, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, golden, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes) and %s (%d bytes)", capPath, len(capture), goldenPath, len(golden))
	}

	capture, err := os.ReadFile(capPath)
	if err != nil {
		t.Fatalf("missing committed capture (regenerate with TRAFFIC_REGEN=1): %v", err)
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	rc := flightTestReceiver(t)
	if _, err := ReplayTraffic(rc, capture); err != nil {
		t.Fatal(err)
	}
	got := renderRows(rc.Advance())
	if !bytes.Equal(got, golden) {
		t.Fatalf("replay result log diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}
