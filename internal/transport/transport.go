// Package transport carries Jarvis traffic between data source agents
// and stream processors: length-prefixed frames of records (the Kryo
// substitute in internal/wire) over any byte stream, usually TCP.
//
// Per §V, each drained record must reach the SP-side replica of the
// operator its control proxy guards, and watermarks are replicated onto
// the drain paths so the SP can merge event-time progress across all of
// a source's streams. Frames therefore carry the SP-side stage id; a
// reserved stream id carries watermarks.
//
// Two shipping disciplines coexist on the same wire format:
//
//   - Legacy: a Shipper writes epoch frames fire-and-forget; the
//     receiver applies each frame as it arrives.
//   - Sequenced (fault tolerance, §IV-E): a DurableShipper opens with a
//     Hello, numbers every epoch, and terminates it with an EpochEnd
//     commit marker. The receiver stages a connection's frames until the
//     marker, applies the epoch atomically exactly once (duplicates from
//     replay are discarded whole), and acknowledges durability back to
//     the agent so it can prune its bounded replay buffer.
package transport

import (
	"fmt"
	"io"
	"sync"

	"jarvis/internal/obs"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// WatermarkStreamID tags frames that carry event-time progress instead
// of data records.
const WatermarkStreamID = ^uint32(0)

// Health counter names exposed through the obs.Registry of each
// Receiver, Server and DurableShipper (scrape them via the obs HTTP
// server's /metrics).
const (
	CtrConnsAccepted  = "conns_accepted"
	CtrConnsClosed    = "conns_closed"
	CtrRecvErrors     = "recv_errors"
	CtrFramesIn       = "frames_in"
	CtrEpochsApplied  = "epochs_applied"
	CtrEpochsReplayed = "epochs_replayed" // duplicate epochs discarded by seq dedup
	CtrAcksSent       = "acks_sent"
	CtrEpochsDropped  = "epochs_dropped" // unacked epochs evicted from a full replay buffer
	CtrReconnects     = "reconnects"
	CtrConnErrors     = "conn_errors"     // connections that ended with a transport error
	CtrSourceResets   = "source_resets"   // fresh agent incarnations that reset a dedup frontier
	CtrHellosRejected = "hellos_rejected" // sequenced hellos refused by the hello gate (fencing/standby)
	CtrFailovers      = "failovers"       // ConnectAny attaching to a different endpoint than before

	// Wire-compression accounting (receiver side, columnar data frames):
	// payload bytes as carried on the wire vs. after inflation, and
	// their ratio as a float gauge.
	CtrWireBytesIn            = "wire_bytes_in"
	CtrWireRawBytesIn         = "wire_raw_bytes_in"
	GaugeWireCompressionRatio = "wire_compression_ratio"
)

// maxStagedFrames bounds one connection's frames between EpochEnd
// markers, protecting the SP from a peer that never commits.
const maxStagedFrames = 1 << 16

// HelloGate vets sequenced Hellos before a receiver admits them — the
// hook the HA subsystem uses for role and fencing checks. AdmitHello is
// called with the term the agent announced; it returns the term to
// advertise in the ack, or an error to reject the connection (the
// receiver closes it, and a stale primary learns it has been superseded).
// Implementations must be safe for concurrent use.
type HelloGate interface {
	AdmitHello(agentTerm uint64) (ackTerm uint64, err error)
}

// Shipper serializes a source pipeline's epoch output onto a byte
// stream (the legacy fire-and-forget discipline; see DurableShipper for
// the sequenced, replayable one).
type Shipper struct {
	source uint32
	fw     *wire.FrameWriter

	// accounting
	bytesOut int64
	frames   int64
}

// NewShipper creates a shipper for the given source id writing to w.
func NewShipper(source uint32, w io.Writer) *Shipper {
	return &Shipper{source: source, fw: wire.NewFrameWriter(w)}
}

// EnableColumnar switches the shipper's data frames to the wire-v2
// columnar encoding. The fire-and-forget discipline has no handshake to
// negotiate over, so enable it only when the receiving side is known to
// speak v2 (this repository's Receiver always does).
func (s *Shipper) EnableColumnar() { s.fw.SetColumnar(true) }

// EnableCompression switches the shipper's columnar data frames to the
// flate-compressed encoding. Like EnableColumnar, there is no handshake
// here — enable it only when the receiving side is known to decode it
// (this repository's Receiver always does). No effect without
// EnableColumnar.
func (s *Shipper) EnableCompression() { s.fw.SetCompression(true) }

// ShipEpoch transmits one epoch's drains (row then columnar per stage,
// preserving the pipeline's record order), results and watermark. It
// flushes so the SP observes complete epochs.
func (s *Shipper) ShipEpoch(res stream.EpochResult) error {
	nStages := len(res.Drains)
	if len(res.ColDrains) > nStages {
		nStages = len(res.ColDrains)
	}
	for stage := 0; stage < nStages; stage++ {
		if stage < len(res.Drains) && len(res.Drains[stage]) > 0 {
			if err := s.ship(uint32(stage), res.Drains[stage]); err != nil {
				return err
			}
		}
		if stage < len(res.ColDrains) && len(res.ColDrains[stage].Secs) > 0 {
			if err := s.shipCols(uint32(stage), &res.ColDrains[stage]); err != nil {
				return err
			}
		}
	}
	if len(res.Results) > 0 {
		if err := s.ship(uint32(res.ResultStage), res.Results); err != nil {
			return err
		}
	}
	if len(res.ColResults.Secs) > 0 {
		if err := s.shipCols(uint32(res.ResultStage), &res.ColResults); err != nil {
			return err
		}
	}
	wmRec := telemetry.Record{Time: res.Watermark, WireSize: 17, Data: &wire.Watermark{Time: res.Watermark}}
	if err := s.ship(WatermarkStreamID, telemetry.Batch{wmRec}); err != nil {
		return err
	}
	return s.fw.Flush()
}

func (s *Shipper) ship(streamID uint32, batch telemetry.Batch) error {
	err := s.fw.WriteFrame(wire.Frame{StreamID: streamID, Source: s.source, Records: batch})
	if err != nil {
		return fmt.Errorf("transport: ship stream %d: %w", streamID, err)
	}
	s.frames++
	s.bytesOut += batch.TotalBytes()
	return nil
}

func (s *Shipper) shipCols(streamID uint32, cb *wire.ColumnarBatch) error {
	err := s.fw.WriteFrame(wire.Frame{StreamID: streamID, Source: s.source, Cols: cb})
	if err != nil {
		return fmt.Errorf("transport: ship stream %d: %w", streamID, err)
	}
	s.frames++
	s.bytesOut += cb.TotalBytes()
	return nil
}

// BytesOut returns the payload bytes shipped (wire-size accounting).
func (s *Shipper) BytesOut() int64 { return s.bytesOut }

// Frames returns the number of frames shipped.
func (s *Shipper) Frames() int64 { return s.frames }

// Receiver feeds frames from source connections into a shared SP engine.
// It is safe for concurrent use by one goroutine per connection.
type Receiver struct {
	mu       sync.Mutex
	engine   *stream.SPEngine
	counters *obs.Registry

	// Wire-level compression accounting, aggregated across connections:
	// columnar payload bytes as carried on the wire vs. after inflation,
	// and the derived wire_compression_ratio gauge (raw/wire).
	ctrWireBytes obs.Counter
	ctrRawBytes  obs.Counter
	compRatio    obs.FloatGauge

	// Sequenced-connection state: per-source applied and durably-acked
	// epoch sequence numbers, plus the ack writer of each source's live
	// connection.
	applied   map[uint32]uint64
	durable   map[uint32]uint64
	writers   map[uint32]*ackWriter
	manualAck bool
	maxVer    uint32
	gate      HelloGate
	colExec   bool
	comp      bool

	bytesIn int64
	frames  int64
}

// NewReceiver wraps an SP engine.
func NewReceiver(engine *stream.SPEngine) *Receiver {
	reg := obs.NewRegistry()
	return &Receiver{
		engine:       engine,
		counters:     reg,
		ctrWireBytes: reg.Counter(CtrWireBytesIn),
		ctrRawBytes:  reg.Counter(CtrWireRawBytesIn),
		compRatio:    reg.FloatGauge(GaugeWireCompressionRatio),
		applied:      make(map[uint32]uint64),
		durable:      make(map[uint32]uint64),
		writers:      make(map[uint32]*ackWriter),
		maxVer:       wire.CurrentWireVersion,
		colExec:      true,
		comp:         true,
	}
}

// SetColumnarExec switches the receiver's v2 frames between SoA
// execution (the default: decoded columns flow straight into
// SPEngine.IngestColumnar, no record materialization on the plan's SoA
// prefix) and the row-materializing reference path. Call before serving
// connections.
func (rc *Receiver) SetColumnarExec(v bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.colExec = v
}

func (rc *Receiver) columnarExec() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.colExec
}

// SetMaxVersion caps the wire version this receiver advertises in acks
// (and accepts on the wire): SetMaxVersion(wire.WireV1) makes it behave
// like a pre-columnar receiver — shippers negotiate down and columnar
// frames are rejected. Call before serving connections.
func (rc *Receiver) SetMaxVersion(v uint32) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if v < wire.WireV1 {
		v = wire.WireV1
	}
	rc.maxVer = v
}

func (rc *Receiver) maxVersion() uint32 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.maxVer
}

// SetCompression controls whether the receiver advertises
// flate-compressed columnar frames in its acks (on by default — the
// reader decodes them transparently). SetCompression(false) emulates a
// v2 receiver predating compression: shippers then decompress at write
// time. Call before serving connections.
func (rc *Receiver) SetCompression(v bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.comp = v
}

func (rc *Receiver) compression() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.comp
}

// Counters exposes the receiver's health counters (shared with the
// Server wrapping it).
func (rc *Receiver) Counters() *obs.Registry { return rc.counters }

// MaxVersion returns the wire version the receiver advertises in acks.
func (rc *Receiver) MaxVersion() uint32 { return rc.maxVersion() }

// CompressionEnabled reports whether the receiver advertises
// flate-compressed columnar frames in its acks.
func (rc *Receiver) CompressionEnabled() bool { return rc.compression() }

// SetHelloGate installs a hello gate (HA role/fencing checks). Call
// before serving connections; a nil gate admits every hello with term 0.
func (rc *Receiver) SetHelloGate(g HelloGate) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.gate = g
}

func (rc *Receiver) helloGate() HelloGate {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.gate
}

// SetManualAck switches acknowledgement to the recovery manager: epochs
// are acked only after a durable snapshot covers them (AckSeqs), instead
// of immediately on application. Call before serving connections.
func (rc *Receiver) SetManualAck(v bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.manualAck = v
}

// ackWriter serializes control-frame writes on one connection (epoch
// handling and recovery-manager acks run on different goroutines).
type ackWriter struct {
	mu   sync.Mutex
	fw   *wire.FrameWriter
	ver  uint32 // wire version advertised in this connection's acks
	term uint64 // primary term advertised in this connection's acks
	comp bool   // compression support advertised in this connection's acks
}

func (w *ackWriter) sendAck(source uint32, seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec := telemetry.Record{WireSize: 29, Data: &wire.Ack{Source: source, Seq: seq, Version: w.ver, Term: w.term, Compress: w.comp}}
	if err := w.fw.WriteFrame(wire.Frame{StreamID: wire.ControlStreamID, Source: source, Records: telemetry.Batch{rec}}); err != nil {
		return err
	}
	return w.fw.Flush()
}

// HandleStream consumes frames from r until EOF, ingesting records and
// watermarks. It returns nil on clean EOF. Legacy entry point for
// read-only streams; sequenced connections (Hello/EpochEnd/acks) need
// HandleConn.
func (rc *Receiver) HandleStream(r io.Reader) error {
	return rc.HandleConn(readOnlyConn{r})
}

type readOnlyConn struct{ io.Reader }

func (readOnlyConn) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("transport: connection is read-only, cannot ack")
}

// HandleConn consumes frames from conn until EOF. Plain data frames are
// ingested immediately (legacy shippers); once a Hello arrives the
// connection switches to the sequenced discipline: frames are staged and
// applied atomically, exactly once, at each EpochEnd marker, and acks
// flow back on the same connection.
func (rc *Receiver) HandleConn(conn io.ReadWriter) error {
	fr := wire.NewFrameReader(conn)
	// maxVer, the execution mode and compression support are fixed before
	// serving; snapshot them once instead of taking the shared mutex per
	// frame.
	maxVer := rc.maxVersion()
	comp := rc.compression() && maxVer >= wire.WireV2
	colExec := rc.columnarExec() && maxVer >= wire.WireV2
	fr.SetColumnarExec(colExec)
	if colExec {
		// SoA frames decode into pooled arenas; they are recycled at each
		// consumption point below, once nothing references the columns.
		fr.EnableArenaPooling()
	}
	var (
		aw        *ackWriter
		src       uint32
		sequenced bool
		staged    []wire.Frame
	)
	defer func() {
		if sequenced {
			rc.dropWriter(src, aw)
		}
	}()
	var lastStats wire.FrameStats
	for {
		decStart := obs.Now()
		f, err := fr.ReadFrame()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			rc.counters.Inc(CtrRecvErrors)
			return fmt.Errorf("transport: read frame: %w", err)
		}
		obs.Since(obs.StageDecode, decStart)
		if st := fr.Stats(); st != lastStats {
			rc.ctrWireBytes.Add(st.WireBytes - lastStats.WireBytes)
			rc.ctrRawBytes.Add(st.RawBytes - lastStats.RawBytes)
			lastStats = st
			if w := rc.ctrWireBytes.Value(); w > 0 {
				rc.compRatio.Set(float64(rc.ctrRawBytes.Value()) / float64(w))
			}
		}
		rc.noteFrame(f)
		if f.Columnar && maxVer < wire.WireV2 {
			// A v1-capped receiver behaves like a pre-columnar build: the
			// frame is unintelligible, not silently tolerated.
			rc.counters.Inc(CtrRecvErrors)
			return fmt.Errorf("wire: columnar frame on a v1 connection")
		}
		if f.StreamID == wire.ControlStreamID {
			for _, rec := range f.Records {
				switch c := rec.Data.(type) {
				case *wire.Hello:
					var ackTerm uint64
					if g := rc.helloGate(); g != nil {
						t, gerr := g.AdmitHello(c.Term)
						if gerr != nil {
							// Rejected: fencing (the agent carries a newer
							// primary's term) or a standby not yet promoted.
							// Closing without an ack sends the agent to its
							// next endpoint.
							rc.counters.Inc(CtrHellosRejected)
							return fmt.Errorf("transport: hello rejected: %w", gerr)
						}
						ackTerm = t
					}
					if sequenced {
						rc.dropWriter(src, aw)
					}
					src, sequenced = c.Source, true
					staged = staged[:0]
					// Any frames staged before this Hello are dropped whole;
					// their decoded columns are unreferenced now.
					fr.RecycleArenas()
					aw = &ackWriter{fw: wire.NewFrameWriter(conn), ver: maxVer, term: ackTerm, comp: comp}
					seq := rc.registerConn(src, c.Seq, aw)
					if err := aw.sendAck(src, seq); err != nil {
						rc.counters.Inc(CtrRecvErrors)
						return fmt.Errorf("transport: hello ack: %w", err)
					}
					rc.counters.Inc(CtrAcksSent)
				case *wire.EpochEnd:
					if !sequenced {
						rc.counters.Inc(CtrRecvErrors)
						return fmt.Errorf("transport: epoch end before hello")
					}
					ackSeq, ack, err := rc.commitEpoch(src, c, staged)
					staged = staged[:0]
					// The epoch (or duplicate) is fully consumed: the engine
					// copied everything it keeps, so the staged frames' column
					// arenas can be reused for the next epoch.
					fr.RecycleArenas()
					if err != nil {
						return err
					}
					if ack {
						if err := aw.sendAck(src, ackSeq); err == nil {
							rc.counters.Inc(CtrAcksSent)
						}
					}
				}
			}
			continue
		}
		if sequenced {
			if len(staged) >= maxStagedFrames {
				rc.counters.Inc(CtrRecvErrors)
				return fmt.Errorf("transport: %d frames staged without an epoch commit", len(staged))
			}
			staged = append(staged, f)
			continue
		}
		if err := rc.consume(f); err != nil {
			rc.counters.Inc(CtrRecvErrors)
			return err
		}
		// Legacy frames are applied one at a time; the frame's columns are
		// consumed the moment consume returns.
		fr.RecycleArenas()
	}
}

func (rc *Receiver) noteFrame(f wire.Frame) {
	rc.mu.Lock()
	rc.frames++
	rc.bytesIn += f.PayloadBytes()
	rc.mu.Unlock()
	rc.counters.Inc(CtrFramesIn)
}

// eachWatermark invokes fn for every watermark record in a frame,
// whichever form it was decoded into (columnar watermark sections
// materialize at decode, so they sit in the batch's row fallbacks).
func eachWatermark(f wire.Frame, fn func(wm int64)) {
	for _, rec := range f.Records {
		if wm, ok := rec.Data.(*wire.Watermark); ok {
			fn(wm.Time)
		}
	}
	if f.Cols != nil {
		for si := range f.Cols.Secs {
			for _, rec := range f.Cols.Secs[si].Rows {
				if wm, ok := rec.Data.(*wire.Watermark); ok {
					fn(wm.Time)
				}
			}
		}
	}
}

// ingest applies one data frame to the engine on whichever execution
// path it was decoded for.
func (rc *Receiver) ingest(f wire.Frame) error {
	if f.Cols != nil {
		return rc.engine.IngestColumnar(int(f.StreamID), f.Cols)
	}
	return rc.engine.Ingest(int(f.StreamID), f.Records)
}

// registerConn records the connection serving a source and returns the
// sequence number to ack in the Hello reply (newest durable epoch).
//
// A Hello carrying Seq == 0 from a source we have already applied epochs
// for is a fresh incarnation (an agent restarted without a checkpoint
// dir): its numbering restarts at 1, so keeping the old frontier would
// silently discard everything it ships. The dedup frontier resets — the
// previous incarnation's epochs stay applied, so cross-incarnation
// semantics degrade to at-least-once, which beats silent loss. A
// restored agent (Seq > 0) keeps the frontier and replays into it.
func (rc *Receiver) registerConn(src uint32, helloSeq uint64, aw *ackWriter) uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.engine.RegisterSource(src)
	rc.writers[src] = aw
	if helloSeq == 0 && rc.applied[src] > 0 {
		rc.applied[src] = 0
		rc.durable[src] = 0
		rc.counters.Inc(CtrSourceResets)
	}
	return rc.durable[src]
}

func (rc *Receiver) dropWriter(src uint32, aw *ackWriter) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.writers[src] == aw {
		delete(rc.writers, src)
	}
}

// commitEpoch applies one staged epoch atomically and exactly once.
// Duplicates (seq at or below the last applied epoch) are discarded
// whole. It reports whether an immediate ack should be sent and for
// which sequence number.
func (rc *Receiver) commitEpoch(src uint32, e *wire.EpochEnd, staged []wire.Frame) (uint64, bool, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if e.Seq <= rc.applied[src] {
		rc.counters.Inc(CtrEpochsReplayed)
		// Re-ack so a replaying agent converges on the durable frontier.
		return rc.durable[src], !rc.manualAck, nil
	}
	for _, f := range staged {
		if f.StreamID == WatermarkStreamID {
			eachWatermark(f, func(wm int64) { rc.engine.ObserveWatermark(f.Source, wm) })
			continue
		}
		if err := rc.ingest(f); err != nil {
			rc.counters.Inc(CtrRecvErrors)
			return 0, false, fmt.Errorf("transport: apply epoch %d: %w", e.Seq, err)
		}
	}
	rc.engine.ObserveWatermark(src, e.Watermark)
	rc.applied[src] = e.Seq
	rc.counters.Inc(CtrEpochsApplied)
	if rc.manualAck {
		return 0, false, nil
	}
	rc.durable[src] = e.Seq
	return e.Seq, true, nil
}

func (rc *Receiver) consume(f wire.Frame) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if f.StreamID == WatermarkStreamID {
		eachWatermark(f, func(wm int64) { rc.engine.ObserveWatermark(f.Source, wm) })
		return nil
	}
	return rc.ingest(f)
}

// RegisterSource pre-registers a source so watermark merging waits for
// it (call before the source's first frame).
func (rc *Receiver) RegisterSource(id uint32) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.engine.RegisterSource(id)
}

// AppliedSeq returns the newest epoch sequence applied for a source
// (zero before its first sequenced epoch).
func (rc *Receiver) AppliedSeq(source uint32) uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.applied[source]
}

// SetApplied restores a source's applied (and durable) epoch sequence
// from a recovered snapshot; epochs at or below it will be discarded as
// duplicates.
func (rc *Receiver) SetApplied(source uint32, seq uint64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if seq > rc.applied[source] {
		rc.applied[source] = seq
	}
	if seq > rc.durable[source] {
		rc.durable[source] = seq
	}
}

// Freeze runs f while epoch application is paused, passing a copy of the
// per-source applied sequences. The recovery manager snapshots the
// engine inside f so the captured state and sequence numbers are
// mutually consistent.
func (rc *Receiver) Freeze(f func(applied map[uint32]uint64)) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	cp := make(map[uint32]uint64, len(rc.applied))
	for k, v := range rc.applied {
		cp[k] = v
	}
	f(cp)
}

// AckSeqs marks the given per-source epochs durable and acknowledges
// them on each source's live connection (recovery-manager mode; pair
// with SetManualAck(true)).
func (rc *Receiver) AckSeqs(seqs map[uint32]uint64) {
	type target struct {
		aw  *ackWriter
		src uint32
		seq uint64
	}
	var targets []target
	rc.mu.Lock()
	for src, seq := range seqs {
		if seq > rc.durable[src] {
			rc.durable[src] = seq
		}
		if aw := rc.writers[src]; aw != nil {
			targets = append(targets, target{aw, src, rc.durable[src]})
		}
	}
	rc.mu.Unlock()
	for _, t := range targets {
		if err := t.aw.sendAck(t.src, t.seq); err == nil {
			rc.counters.Inc(CtrAcksSent)
		}
	}
}

// Advance flushes the engine up to the merged watermark and returns new
// final results.
func (rc *Receiver) Advance() telemetry.Batch {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.engine.Advance()
}

// BytesIn returns payload bytes received.
func (rc *Receiver) BytesIn() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bytesIn
}

// Frames returns the number of frames received.
func (rc *Receiver) Frames() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.frames
}
