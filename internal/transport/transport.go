// Package transport carries Jarvis traffic between data source agents
// and stream processors: length-prefixed frames of records (the Kryo
// substitute in internal/wire) over any byte stream, usually TCP.
//
// Per §V, each drained record must reach the SP-side replica of the
// operator its control proxy guards, and watermarks are replicated onto
// the drain paths so the SP can merge event-time progress across all of
// a source's streams. Frames therefore carry the SP-side stage id; a
// reserved stream id carries watermarks.
package transport

import (
	"fmt"
	"io"
	"sync"

	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// WatermarkStreamID tags frames that carry event-time progress instead
// of data records.
const WatermarkStreamID = ^uint32(0)

// Shipper serializes a source pipeline's epoch output onto a byte
// stream.
type Shipper struct {
	source uint32
	fw     *wire.FrameWriter

	// accounting
	bytesOut int64
	frames   int64
}

// NewShipper creates a shipper for the given source id writing to w.
func NewShipper(source uint32, w io.Writer) *Shipper {
	return &Shipper{source: source, fw: wire.NewFrameWriter(w)}
}

// ShipEpoch transmits one epoch's drains, results and watermark. It
// flushes so the SP observes complete epochs.
func (s *Shipper) ShipEpoch(res stream.EpochResult) error {
	for stage, batch := range res.Drains {
		if len(batch) == 0 {
			continue
		}
		if err := s.ship(uint32(stage), batch); err != nil {
			return err
		}
	}
	if len(res.Results) > 0 {
		if err := s.ship(uint32(res.ResultStage), res.Results); err != nil {
			return err
		}
	}
	wmRec := telemetry.Record{Time: res.Watermark, WireSize: 17, Data: &wire.Watermark{Time: res.Watermark}}
	if err := s.ship(WatermarkStreamID, telemetry.Batch{wmRec}); err != nil {
		return err
	}
	return s.fw.Flush()
}

func (s *Shipper) ship(streamID uint32, batch telemetry.Batch) error {
	err := s.fw.WriteFrame(wire.Frame{StreamID: streamID, Source: s.source, Records: batch})
	if err != nil {
		return fmt.Errorf("transport: ship stream %d: %w", streamID, err)
	}
	s.frames++
	s.bytesOut += batch.TotalBytes()
	return nil
}

// BytesOut returns the payload bytes shipped (wire-size accounting).
func (s *Shipper) BytesOut() int64 { return s.bytesOut }

// Frames returns the number of frames shipped.
func (s *Shipper) Frames() int64 { return s.frames }

// Receiver feeds frames from source connections into a shared SP engine.
// It is safe for concurrent use by one goroutine per connection.
type Receiver struct {
	mu     sync.Mutex
	engine *stream.SPEngine

	bytesIn int64
	frames  int64
}

// NewReceiver wraps an SP engine.
func NewReceiver(engine *stream.SPEngine) *Receiver {
	return &Receiver{engine: engine}
}

// HandleStream consumes frames from r until EOF, ingesting records and
// watermarks. It returns nil on clean EOF.
func (rc *Receiver) HandleStream(r io.Reader) error {
	fr := wire.NewFrameReader(r)
	for {
		f, err := fr.ReadFrame()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("transport: read frame: %w", err)
		}
		if err := rc.consume(f); err != nil {
			return err
		}
	}
}

func (rc *Receiver) consume(f wire.Frame) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.frames++
	rc.bytesIn += f.Records.TotalBytes()
	if f.StreamID == WatermarkStreamID {
		for _, rec := range f.Records {
			if wm, ok := rec.Data.(*wire.Watermark); ok {
				rc.engine.ObserveWatermark(f.Source, wm.Time)
			}
		}
		return nil
	}
	return rc.engine.Ingest(int(f.StreamID), f.Records)
}

// RegisterSource pre-registers a source so watermark merging waits for
// it (call before the source's first frame).
func (rc *Receiver) RegisterSource(id uint32) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.engine.RegisterSource(id)
}

// Advance flushes the engine up to the merged watermark and returns new
// final results.
func (rc *Receiver) Advance() telemetry.Batch {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.engine.Advance()
}

// BytesIn returns payload bytes received.
func (rc *Receiver) BytesIn() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bytesIn
}

// Frames returns the number of frames received.
func (rc *Receiver) Frames() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.frames
}
