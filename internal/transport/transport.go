// Package transport carries Jarvis traffic between data source agents
// and stream processors: length-prefixed frames of records (the Kryo
// substitute in internal/wire) over any byte stream, usually TCP.
//
// Per §V, each drained record must reach the SP-side replica of the
// operator its control proxy guards, and watermarks are replicated onto
// the drain paths so the SP can merge event-time progress across all of
// a source's streams. Frames therefore carry the SP-side stage id; a
// reserved stream id carries watermarks.
//
// Two shipping disciplines coexist on the same wire format:
//
//   - Legacy: a Shipper writes epoch frames fire-and-forget; the
//     receiver applies each frame as it arrives.
//   - Sequenced (fault tolerance, §IV-E): a DurableShipper opens with a
//     Hello, numbers every epoch, and terminates it with an EpochEnd
//     commit marker. The receiver stages a connection's frames until the
//     marker, applies the epoch atomically exactly once (duplicates from
//     replay are discarded whole), and acknowledges durability back to
//     the agent so it can prune its bounded replay buffer.
package transport

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"jarvis/internal/admission"
	"jarvis/internal/obs"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// WatermarkStreamID tags frames that carry event-time progress instead
// of data records.
const WatermarkStreamID = ^uint32(0)

// Health counter names exposed through the obs.Registry of each
// Receiver, Server and DurableShipper (scrape them via the obs HTTP
// server's /metrics).
const (
	CtrConnsAccepted  = "conns_accepted"
	CtrConnsClosed    = "conns_closed"
	CtrRecvErrors     = "recv_errors"
	CtrFramesIn       = "frames_in"
	CtrEpochsApplied  = "epochs_applied"
	CtrEpochsReplayed = "epochs_replayed" // duplicate epochs discarded by seq dedup
	CtrAcksSent       = "acks_sent"
	CtrEpochsDropped  = "epochs_dropped" // unacked epochs evicted from a full replay buffer
	CtrReconnects     = "reconnects"
	CtrConnErrors     = "conn_errors"     // connections that ended with a transport error
	CtrSourceResets   = "source_resets"   // fresh agent incarnations that reset a dedup frontier
	CtrHellosRejected = "hellos_rejected" // sequenced hellos refused by the hello gate (fencing/standby)
	CtrFailovers      = "failovers"       // ConnectAny attaching to a different endpoint than before

	// Overload-protection accounting. epochs_shed mirrors the admission
	// controller's counter on the receiver registry (it also counts sheds
	// on receivers running without a controller); epoch_gaps counts
	// sequence holes detected after a shed, each answered with a
	// replay-request ack. Shipper side, replay_requests counts replay
	// asks honored and dial_backoffs counts reconnect attempts suppressed
	// or deferred by the jittered exponential dial backoff.
	CtrEpochsShed     = "epochs_shed"
	CtrEpochGaps      = "epoch_gaps"
	CtrReplayRequests = "replay_requests"
	CtrDialBackoffs   = "dial_backoffs"

	// Wire-compression accounting (receiver side, columnar data frames):
	// payload bytes as carried on the wire vs. after inflation, and
	// their ratio as a float gauge.
	CtrWireBytesIn            = "wire_bytes_in"
	CtrWireRawBytesIn         = "wire_raw_bytes_in"
	GaugeWireCompressionRatio = "wire_compression_ratio"
)

// maxStagedFrames bounds one connection's frames between EpochEnd
// markers, protecting the SP from a peer that never commits. Overflow
// sheds the epoch (metered, connection kept) instead of erroring out:
// the frames staged so far are dropped, the epoch's EpochEnd discards
// it whole, and a replay-request ack asks the shipper to re-send it
// once the receiver has breathing room — the epoch is still in the
// agent's replay buffer, so nothing is lost.
const maxStagedFrames = 1 << 16

// HelloGate vets sequenced Hellos before a receiver admits them — the
// hook the HA subsystem uses for role and fencing checks. AdmitHello is
// called with the term the agent announced; it returns the term to
// advertise in the ack, or an error to reject the connection (the
// receiver closes it, and a stale primary learns it has been superseded).
// Implementations must be safe for concurrent use.
type HelloGate interface {
	AdmitHello(agentTerm uint64) (ackTerm uint64, err error)
}

// Shipper serializes a source pipeline's epoch output onto a byte
// stream (the legacy fire-and-forget discipline; see DurableShipper for
// the sequenced, replayable one).
type Shipper struct {
	source uint32
	fw     *wire.FrameWriter

	// accounting
	bytesOut int64
	frames   int64
}

// NewShipper creates a shipper for the given source id writing to w.
func NewShipper(source uint32, w io.Writer) *Shipper {
	return &Shipper{source: source, fw: wire.NewFrameWriter(w)}
}

// EnableColumnar switches the shipper's data frames to the wire-v2
// columnar encoding. The fire-and-forget discipline has no handshake to
// negotiate over, so enable it only when the receiving side is known to
// speak v2 (this repository's Receiver always does).
func (s *Shipper) EnableColumnar() { s.fw.SetColumnar(true) }

// EnableCompression switches the shipper's columnar data frames to the
// flate-compressed encoding. Like EnableColumnar, there is no handshake
// here — enable it only when the receiving side is known to decode it
// (this repository's Receiver always does). No effect without
// EnableColumnar.
func (s *Shipper) EnableCompression() { s.fw.SetCompression(true) }

// ShipEpoch transmits one epoch's drains (row then columnar per stage,
// preserving the pipeline's record order), results and watermark. It
// flushes so the SP observes complete epochs.
func (s *Shipper) ShipEpoch(res stream.EpochResult) error {
	nStages := len(res.Drains)
	if len(res.ColDrains) > nStages {
		nStages = len(res.ColDrains)
	}
	for stage := 0; stage < nStages; stage++ {
		if stage < len(res.Drains) && len(res.Drains[stage]) > 0 {
			if err := s.ship(uint32(stage), res.Drains[stage]); err != nil {
				return err
			}
		}
		if stage < len(res.ColDrains) && len(res.ColDrains[stage].Secs) > 0 {
			if err := s.shipCols(uint32(stage), &res.ColDrains[stage]); err != nil {
				return err
			}
		}
	}
	if len(res.Results) > 0 {
		if err := s.ship(uint32(res.ResultStage), res.Results); err != nil {
			return err
		}
	}
	if len(res.ColResults.Secs) > 0 {
		if err := s.shipCols(uint32(res.ResultStage), &res.ColResults); err != nil {
			return err
		}
	}
	wmRec := telemetry.Record{Time: res.Watermark, WireSize: 17, Data: &wire.Watermark{Time: res.Watermark}}
	if err := s.ship(WatermarkStreamID, telemetry.Batch{wmRec}); err != nil {
		return err
	}
	return s.fw.Flush()
}

func (s *Shipper) ship(streamID uint32, batch telemetry.Batch) error {
	err := s.fw.WriteFrame(wire.Frame{StreamID: streamID, Source: s.source, Records: batch})
	if err != nil {
		return fmt.Errorf("transport: ship stream %d: %w", streamID, err)
	}
	s.frames++
	s.bytesOut += batch.TotalBytes()
	return nil
}

func (s *Shipper) shipCols(streamID uint32, cb *wire.ColumnarBatch) error {
	err := s.fw.WriteFrame(wire.Frame{StreamID: streamID, Source: s.source, Cols: cb})
	if err != nil {
		return fmt.Errorf("transport: ship stream %d: %w", streamID, err)
	}
	s.frames++
	s.bytesOut += cb.TotalBytes()
	return nil
}

// BytesOut returns the payload bytes shipped (wire-size accounting).
func (s *Shipper) BytesOut() int64 { return s.bytesOut }

// Frames returns the number of frames shipped.
func (s *Shipper) Frames() int64 { return s.frames }

// Receiver feeds frames from source connections into a shared SP engine.
// It is safe for concurrent use by one goroutine per connection.
type Receiver struct {
	mu       sync.Mutex
	engine   *stream.SPEngine
	counters *obs.Registry

	// Wire-level compression accounting, aggregated across connections:
	// columnar payload bytes as carried on the wire vs. after inflation,
	// and the derived wire_compression_ratio gauge (raw/wire).
	ctrWireBytes obs.Counter
	ctrRawBytes  obs.Counter
	compRatio    obs.FloatGauge

	// Sequenced-connection state: per-source applied and durably-acked
	// epoch sequence numbers, plus the ack writer of each source's live
	// connection.
	applied   map[uint32]uint64
	durable   map[uint32]uint64
	writers   map[uint32]*ackWriter
	manualAck bool
	maxVer    uint32
	gate      HelloGate
	colExec   bool
	comp      bool

	// Overload protection (nil admit disables it — legacy behavior).
	// delayed holds over-budget epochs per source, row-materialized so
	// they own their memory after the decode arenas recycle; delayedN is
	// the total across sources (bounded by the controller's MaxDelayed).
	// gapSeen remembers, per source, the first sequence discarded at a
	// gap: seeing the same sequence a second time means the agent has
	// replayed everything it still buffers and the hole cannot be filled,
	// so the receiver force-drains the queue and accepts the jump.
	admit    *admission.Controller
	delayed  map[uint32][]*delayedEpoch
	delayedN int
	gapSeen  map[uint32]uint64

	// Anomaly flight recorder (nil = unarmed, zero capture cost).
	flight *FlightRecorder

	// Full-stream traffic recorder (nil = unarmed).
	traffic *TrafficRecorder

	bytesIn int64
	frames  int64
}

// delayedEpoch is one over-budget epoch parked in the receiver's delay
// queue: its commit marker plus row-materialized frames (safe to hold
// past arena recycling) and arrival time for queueing-latency metrics.
type delayedEpoch struct {
	seq       uint64
	watermark int64
	bytes     int64
	arrival   time.Time
	frames    []wire.Frame
}

// ackTarget is one ack to send after the receiver's mutex is released
// (acks are cumulative per source, so one per touched source suffices).
type ackTarget struct {
	aw     *ackWriter
	src    uint32
	seq    uint64
	replay bool
}

// NewReceiver wraps an SP engine.
func NewReceiver(engine *stream.SPEngine) *Receiver {
	reg := obs.NewRegistry()
	return &Receiver{
		engine:       engine,
		counters:     reg,
		ctrWireBytes: reg.Counter(CtrWireBytesIn),
		ctrRawBytes:  reg.Counter(CtrWireRawBytesIn),
		compRatio:    reg.FloatGauge(GaugeWireCompressionRatio),
		applied:      make(map[uint32]uint64),
		durable:      make(map[uint32]uint64),
		writers:      make(map[uint32]*ackWriter),
		delayed:      make(map[uint32][]*delayedEpoch),
		gapSeen:      make(map[uint32]uint64),
		maxVer:       wire.CurrentWireVersion,
		colExec:      true,
		comp:         true,
	}
}

// SetAdmission installs an admission controller on the receiver's
// sequenced path: each epoch commit is admitted, delayed (queued and
// drained as its tenant's budget refills), degraded to sampled
// ingestion, or shed. Nil (the default) admits everything immediately.
// Call before serving connections.
func (rc *Receiver) SetAdmission(ctrl *admission.Controller) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.admit = ctrl
	if ctrl != nil {
		// The degrader maps raw event times to window ids when it records
		// sampled windows; that mapping must use the deployed query's
		// window, not the 1 s default, or rescaling looks up wrong ids.
		if wd := rc.engine.WindowDur(); wd > 0 {
			ctrl.Degrader().SetWindowMicros(wd)
		}
	}
}

// Admission returns the installed admission controller (nil when
// overload protection is off).
func (rc *Receiver) Admission() *admission.Controller {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.admit
}

func (rc *Receiver) admission() *admission.Controller {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.admit
}

// throttleFor computes the backpressure hint to piggyback on a source's
// acks (0 without a controller or for a healthy tenant).
func (rc *Receiver) throttleFor(src uint32) uint64 {
	if ctrl := rc.admission(); ctrl != nil {
		return ctrl.ThrottleMicros(src)
	}
	return 0
}

// SetColumnarExec switches the receiver's v2 frames between SoA
// execution (the default: decoded columns flow straight into
// SPEngine.IngestColumnar, no record materialization on the plan's SoA
// prefix) and the row-materializing reference path. Call before serving
// connections.
func (rc *Receiver) SetColumnarExec(v bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.colExec = v
}

func (rc *Receiver) columnarExec() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.colExec
}

// SetMaxVersion caps the wire version this receiver advertises in acks
// (and accepts on the wire): SetMaxVersion(wire.WireV1) makes it behave
// like a pre-columnar receiver — shippers negotiate down and columnar
// frames are rejected. Call before serving connections.
func (rc *Receiver) SetMaxVersion(v uint32) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if v < wire.WireV1 {
		v = wire.WireV1
	}
	rc.maxVer = v
}

func (rc *Receiver) maxVersion() uint32 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.maxVer
}

// SetCompression controls whether the receiver advertises
// flate-compressed columnar frames in its acks (on by default — the
// reader decodes them transparently). SetCompression(false) emulates a
// v2 receiver predating compression: shippers then decompress at write
// time. Call before serving connections.
func (rc *Receiver) SetCompression(v bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.comp = v
}

func (rc *Receiver) compression() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.comp
}

// SetFlightRecorder arms the anomaly flight recorder: every sequenced
// connection keeps a bounded ring of raw wire frames that the recorder
// dumps on shed/degrade/failover/fencing events (and on demand). Call
// before serving connections; nil disarms.
func (rc *Receiver) SetFlightRecorder(f *FlightRecorder) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.flight = f
}

func (rc *Receiver) flightRecorder() *FlightRecorder {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.flight
}

// SetTrafficRecorder arms full-stream traffic capture: every sequenced
// frame of every connection is appended to the recorder for later
// replay (ReplayTraffic) or sim ingestion. Call before serving
// connections; nil disarms.
func (rc *Receiver) SetTrafficRecorder(t *TrafficRecorder) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.traffic = t
}

func (rc *Receiver) trafficRecorder() *TrafficRecorder {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.traffic
}

// Counters exposes the receiver's health counters (shared with the
// Server wrapping it).
func (rc *Receiver) Counters() *obs.Registry { return rc.counters }

// MaxVersion returns the wire version the receiver advertises in acks.
func (rc *Receiver) MaxVersion() uint32 { return rc.maxVersion() }

// CompressionEnabled reports whether the receiver advertises
// flate-compressed columnar frames in its acks.
func (rc *Receiver) CompressionEnabled() bool { return rc.compression() }

// SetHelloGate installs a hello gate (HA role/fencing checks). Call
// before serving connections; a nil gate admits every hello with term 0.
func (rc *Receiver) SetHelloGate(g HelloGate) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.gate = g
}

func (rc *Receiver) helloGate() HelloGate {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.gate
}

// SetManualAck switches acknowledgement to the recovery manager: epochs
// are acked only after a durable snapshot covers them (AckSeqs), instead
// of immediately on application. Call before serving connections.
func (rc *Receiver) SetManualAck(v bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.manualAck = v
}

// ackWriter serializes control-frame writes on one connection (epoch
// handling and recovery-manager acks run on different goroutines).
type ackWriter struct {
	mu   sync.Mutex
	fw   *wire.FrameWriter
	ver  uint32 // wire version advertised in this connection's acks
	term uint64 // primary term advertised in this connection's acks
	comp bool   // compression support advertised in this connection's acks
}

func (w *ackWriter) sendAck(source uint32, seq uint64, throttleMicros uint64, replay bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec := telemetry.Record{WireSize: 29, Data: &wire.Ack{
		Source: source, Seq: seq, Version: w.ver, Term: w.term, Compress: w.comp,
		ThrottleMicros: throttleMicros, Replay: replay,
	}}
	if err := w.fw.WriteFrame(wire.Frame{StreamID: wire.ControlStreamID, Source: source, Records: telemetry.Batch{rec}}); err != nil {
		return err
	}
	return w.fw.Flush()
}

// HandleStream consumes frames from r until EOF, ingesting records and
// watermarks. It returns nil on clean EOF. Legacy entry point for
// read-only streams; sequenced connections (Hello/EpochEnd/acks) need
// HandleConn.
func (rc *Receiver) HandleStream(r io.Reader) error {
	return rc.HandleConn(readOnlyConn{r})
}

type readOnlyConn struct{ io.Reader }

func (readOnlyConn) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("transport: connection is read-only, cannot ack")
}

// HandleConn consumes frames from conn until EOF. Plain data frames are
// ingested immediately (legacy shippers); once a Hello arrives the
// connection switches to the sequenced discipline: frames are staged and
// applied atomically, exactly once, at each EpochEnd marker, and acks
// flow back on the same connection.
func (rc *Receiver) HandleConn(conn io.ReadWriter) error {
	fr := wire.NewFrameReader(conn)
	// maxVer, the execution mode and compression support are fixed before
	// serving; snapshot them once instead of taking the shared mutex per
	// frame.
	maxVer := rc.maxVersion()
	comp := rc.compression() && maxVer >= wire.WireV2
	colExec := rc.columnarExec() && maxVer >= wire.WireV2
	fr.SetColumnarExec(colExec)
	if colExec {
		// SoA frames decode into pooled arenas; they are recycled at each
		// consumption point below, once nothing references the columns.
		fr.EnableArenaPooling()
	}
	var (
		aw        *ackWriter
		src       uint32
		sequenced bool
		staged    []wire.Frame
		shedding  bool          // staged-frame overflow: drop until the next EpochEnd
		decAccum  time.Duration // frame-decode time since the last EpochEnd (trace context)
	)
	var ring *flightRing
	if fl := rc.flightRecorder(); fl != nil {
		ring = fl.newRing()
		defer ring.close()
	}
	tap := rc.trafficRecorder().newTap()
	defer func() {
		if sequenced {
			rc.dropWriter(src, aw)
		}
	}()
	var lastStats wire.FrameStats
	for {
		decStart := obs.Now()
		f, err := fr.ReadFrame()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			rc.counters.Inc(CtrRecvErrors)
			return fmt.Errorf("transport: read frame: %w", err)
		}
		decAccum += obs.ObserveSince(obs.StageDecode, decStart)
		ring.capture(fr.RawFrame())
		tap.capture(fr.RawFrame())
		if st := fr.Stats(); st != lastStats {
			rc.ctrWireBytes.Add(st.WireBytes - lastStats.WireBytes)
			rc.ctrRawBytes.Add(st.RawBytes - lastStats.RawBytes)
			lastStats = st
			if w := rc.ctrWireBytes.Value(); w > 0 {
				rc.compRatio.Set(float64(rc.ctrRawBytes.Value()) / float64(w))
			}
		}
		rc.noteFrame(f)
		if f.Columnar && maxVer < wire.WireV2 {
			// A v1-capped receiver behaves like a pre-columnar build: the
			// frame is unintelligible, not silently tolerated.
			rc.counters.Inc(CtrRecvErrors)
			return fmt.Errorf("wire: columnar frame on a v1 connection")
		}
		if f.StreamID == wire.ControlStreamID {
			for _, rec := range f.Records {
				switch c := rec.Data.(type) {
				case *wire.Hello:
					var ackTerm uint64
					if g := rc.helloGate(); g != nil {
						t, gerr := g.AdmitHello(c.Term)
						if gerr != nil {
							// Rejected: fencing (the agent carries a newer
							// primary's term) or a standby not yet promoted.
							// Closing without an ack sends the agent to its
							// next endpoint.
							rc.counters.Inc(CtrHellosRejected)
							return fmt.Errorf("transport: hello rejected: %w", gerr)
						}
						ackTerm = t
					}
					if sequenced {
						rc.dropWriter(src, aw)
					}
					src, sequenced, shedding = c.Source, true, false
					ring.pinHello(src)
					staged = staged[:0]
					// Any frames staged before this Hello are dropped whole;
					// their decoded columns are unreferenced now.
					fr.RecycleArenas()
					if ctrl := rc.admission(); ctrl != nil {
						ctrl.Register(src, c.Tenant, admission.ClassFromWire(c.Class))
					}
					aw = &ackWriter{fw: wire.NewFrameWriter(conn), ver: maxVer, term: ackTerm, comp: comp}
					seq := rc.registerConn(src, c.Seq, aw)
					if err := aw.sendAck(src, seq, rc.throttleFor(src), false); err != nil {
						rc.counters.Inc(CtrRecvErrors)
						return fmt.Errorf("transport: hello ack: %w", err)
					}
					rc.counters.Inc(CtrAcksSent)
				case *wire.EpochEnd:
					if !sequenced {
						rc.counters.Inc(CtrRecvErrors)
						return fmt.Errorf("transport: epoch end before hello")
					}
					if c.TraceID != 0 {
						// The agent armed cross-process tracing for this epoch:
						// join its half (clock stamps and stage durations from
						// the trailing extension) with the SP-side arrival and
						// accumulated frame-decode time. A shed epoch's entry
						// stays in-flight so the replayed copy is marked as
						// such when it re-begins.
						obs.Traces().Begin(obs.EpochTrace{
							TraceID:       c.TraceID,
							Source:        src,
							Epoch:         c.Seq,
							StartMicros:   c.StartMicros,
							GenMicros:     int64(c.GenMicros),
							PipeMicros:    int64(c.PipeMicros),
							EncMicros:     int64(c.EncMicros),
							SentMicros:    c.SentMicros,
							ArrivalMicros: time.Now().UnixMicro(),
							DecodeMicros:  decAccum.Microseconds(),
						})
					}
					decAccum = 0
					if shedding {
						// The epoch overflowed the staging bound mid-flight:
						// discard it whole and ask for a replay once the
						// shipper's next ack arrives. Its seq never advances
						// the applied frontier, so the replayed copy is not a
						// duplicate.
						shedding = false
						staged = staged[:0]
						fr.RecycleArenas()
						rc.noteShed(src, c.Seq, "staged_overflow", false)
						if err := aw.sendAck(src, rc.durableSeq(src), rc.throttleFor(src), true); err == nil {
							rc.counters.Inc(CtrAcksSent)
						}
						continue
					}
					targets, err := rc.commitEpoch(src, c, staged, aw)
					staged = staged[:0]
					// The epoch (or duplicate) is fully consumed: the engine
					// copied everything it keeps (delayed epochs were
					// row-materialized), so the staged frames' column arenas
					// can be reused for the next epoch.
					fr.RecycleArenas()
					if err != nil {
						return err
					}
					tap.noteEpoch()
					rc.sendAcks(targets)
				}
			}
			continue
		}
		if sequenced {
			if shedding {
				// Mid-shed: the rest of the epoch's frames drop on the floor.
				fr.RecycleArenas()
				continue
			}
			if len(staged) >= maxStagedFrames {
				// Metered shedding instead of a connection-fatal error: drop
				// what is staged, skip to this epoch's EpochEnd and have the
				// shipper replay it later.
				shedding = true
				staged = staged[:0]
				fr.RecycleArenas()
				continue
			}
			staged = append(staged, f)
			continue
		}
		if err := rc.consume(f); err != nil {
			rc.counters.Inc(CtrRecvErrors)
			return err
		}
		// Legacy frames are applied one at a time; the frame's columns are
		// consumed the moment consume returns.
		fr.RecycleArenas()
	}
}

func (rc *Receiver) noteFrame(f wire.Frame) {
	rc.mu.Lock()
	rc.frames++
	rc.bytesIn += f.PayloadBytes()
	rc.mu.Unlock()
	rc.counters.Inc(CtrFramesIn)
}

// eachWatermark invokes fn for every watermark record in a frame,
// whichever form it was decoded into (columnar watermark sections
// materialize at decode, so they sit in the batch's row fallbacks).
func eachWatermark(f wire.Frame, fn func(wm int64)) {
	for _, rec := range f.Records {
		if wm, ok := rec.Data.(*wire.Watermark); ok {
			fn(wm.Time)
		}
	}
	if f.Cols != nil {
		for si := range f.Cols.Secs {
			for _, rec := range f.Cols.Secs[si].Rows {
				if wm, ok := rec.Data.(*wire.Watermark); ok {
					fn(wm.Time)
				}
			}
		}
	}
}

// ingest applies one data frame to the engine on whichever execution
// path it was decoded for.
func (rc *Receiver) ingest(f wire.Frame) error {
	if f.Cols != nil {
		return rc.engine.IngestColumnar(int(f.StreamID), f.Cols)
	}
	return rc.engine.Ingest(int(f.StreamID), f.Records)
}

// registerConn records the connection serving a source and returns the
// sequence number to ack in the Hello reply (newest durable epoch).
//
// A Hello carrying Seq == 0 from a source we have already applied epochs
// for is a fresh incarnation (an agent restarted without a checkpoint
// dir): its numbering restarts at 1, so keeping the old frontier would
// silently discard everything it ships. The dedup frontier resets — the
// previous incarnation's epochs stay applied, so cross-incarnation
// semantics degrade to at-least-once, which beats silent loss. A
// restored agent (Seq > 0) keeps the frontier and replays into it.
func (rc *Receiver) registerConn(src uint32, helloSeq uint64, aw *ackWriter) uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.engine.RegisterSource(src)
	rc.writers[src] = aw
	if helloSeq == 0 && rc.applied[src] > 0 {
		// The outstanding-gap marker belongs to the dead sequence space
		// too; a resumed hello (Seq > 0) keeps it, so a hole that
		// survives a full replay still escapes on its second sighting
		// even when the replay arrives on a new connection.
		delete(rc.gapSeen, src)
		rc.applied[src] = 0
		rc.durable[src] = 0
		rc.counters.Inc(CtrSourceResets)
		// A fresh incarnation restarts numbering at 1: epochs the previous
		// incarnation left in the delay queue belong to a dead sequence
		// space and would collide with the new one.
		if q := rc.delayed[src]; len(q) > 0 && rc.admit != nil {
			for _, ep := range q {
				rc.delayedN--
				rc.counters.Inc(CtrEpochsShed)
				rc.admit.NoteShed(src, ep.seq, "source_reset", true)
			}
			delete(rc.delayed, src)
		}
	}
	return rc.durable[src]
}

func (rc *Receiver) dropWriter(src uint32, aw *ackWriter) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.writers[src] == aw {
		delete(rc.writers, src)
	}
}

// commitEpoch applies one staged epoch atomically and exactly once.
// Duplicates (seq at or below the last applied or queued epoch) are
// discarded whole. With an admission controller installed the commit is
// metered: over-budget epochs are parked in the delay queue (drained
// in class-priority order as budgets refill), a degraded tenant's raw
// records are sampled down, and sequence gaps left by shed epochs are
// healed with replay-request acks. It returns the acks to send once the
// receiver's mutex is released.
func (rc *Receiver) commitEpoch(src uint32, e *wire.EpochEnd, staged []wire.Frame, aw *ackWriter) ([]ackTarget, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	// Budgets refill with time: drain whatever they now afford first, for
	// every source — a source's delayed epochs must apply before anything
	// newer of its own, and other sources' drains ride along on this
	// commit's lock acquisition.
	targets := rc.drainDelayedLocked()
	selfAck := func(replay bool) []ackTarget {
		return appendAckTarget(targets, ackTarget{aw: aw, src: src, seq: rc.durable[src], replay: replay})
	}
	if e.Seq <= rc.applied[src] {
		rc.counters.Inc(CtrEpochsReplayed)
		// A duplicate of an already-applied epoch: its fresh trace entry
		// (begun at EpochEnd decode) describes an epoch that will never be
		// ingested again, so discard it rather than fake segments.
		obs.Traces().Drop(src, e.Seq)
		if rc.manualAck {
			return targets, nil
		}
		// Re-ack so a replaying agent converges on the durable frontier.
		return selfAck(false), nil
	}
	if rc.admit != nil {
		q := rc.delayed[src]
		next := rc.applied[src] + 1
		if len(q) > 0 {
			last := q[len(q)-1]
			if e.Seq <= last.seq {
				// Replay overlap with an epoch already parked in the queue.
				rc.counters.Inc(CtrEpochsReplayed)
				if rc.manualAck {
					return targets, nil
				}
				return selfAck(false), nil
			}
			next = last.seq + 1
		}
		if e.Seq > next {
			// A hole below this epoch (a shed, or replay-buffer eviction on
			// the agent). First sighting: discard and ask for a replay.
			// A second sighting of the lowest outstanding gap sequence
			// means the agent has replayed everything it still buffers and
			// the hole is unfillable — force-drain the queue and accept
			// the jump. Epochs above the outstanding gap are discarded
			// without dislodging it: one replay re-ships them all, and
			// tracking anything but the lowest would let two buffered
			// epochs alternate the marker and defeat the escape.
			g, outstanding := rc.gapSeen[src]
			switch {
			case !outstanding || e.Seq < g:
				rc.gapSeen[src] = e.Seq
				rc.counters.Inc(CtrEpochGaps)
				return selfAck(true), nil
			case e.Seq > g:
				return selfAck(true), nil
			}
			delete(rc.gapSeen, src)
			targets = rc.forceDrainLocked(src, targets)
		} else {
			delete(rc.gapSeen, src)
		}
		if len(rc.delayed[src]) > 0 {
			// The queue did not fully drain: this epoch parks behind it to
			// preserve per-source order (its budget could not admit it
			// anyway — the queue head already exhausted the bucket).
			// NoteBacklog keeps the degrade hysteresis moving even though no
			// Admit verdict is taken on this path.
			rc.queueDelayedLocked(src, e, staged)
			rc.admit.NoteBacklog(src, framesBytes(staged))
			rc.admit.NoteDelayed(src)
			targets = rc.shedOverflowLocked(targets)
			if rc.manualAck {
				return targets, nil
			}
			return selfAck(false), nil
		}
		verdict := rc.admit.Admit(src, framesBytes(staged))
		if verdict == admission.Delayed {
			rc.queueDelayedLocked(src, e, staged)
			rc.admit.NoteDelayed(src)
			targets = rc.shedOverflowLocked(targets)
			if rc.manualAck {
				return targets, nil
			}
			return selfAck(false), nil
		}
		if err := rc.applyEpochLocked(src, e.Seq, e.Watermark, staged, verdict == admission.AdmittedDegraded); err != nil {
			return targets, err
		}
		rc.admit.ObserveCommitLatency(src, 0)
		if rc.manualAck {
			return targets, nil
		}
		rc.durable[src] = e.Seq
		return selfAck(false), nil
	}
	if err := rc.applyEpochLocked(src, e.Seq, e.Watermark, staged, false); err != nil {
		return targets, err
	}
	if rc.manualAck {
		return targets, nil
	}
	rc.durable[src] = e.Seq
	return selfAck(false), nil
}

// applyEpochLocked ingests one epoch's frames and advances the applied
// frontier. Degraded commits row-materialize each data frame and sample
// the tenant's raw records through the controller's degrader before
// ingestion (partial aggregates and watermarks always pass exact).
func (rc *Receiver) applyEpochLocked(src uint32, seq uint64, watermark int64, frames []wire.Frame, degraded bool) error {
	// Trace context: commit begins now — for delayed epochs this stamp is
	// after the delay-queue wait, so arrival→apply is the wait segment.
	obs.Traces().MarkApply(src, seq, time.Now().UnixMicro())
	var (
		deg    *admission.Degrader
		tenant string
	)
	if degraded && rc.admit != nil {
		deg = rc.admit.Degrader()
		tenant = rc.admit.Tenant(src)
	}
	for _, f := range frames {
		if f.StreamID == WatermarkStreamID {
			eachWatermark(f, func(wm int64) { rc.engine.ObserveWatermark(f.Source, wm) })
			continue
		}
		if deg != nil {
			rows := deg.SampleBatch(tenant, frameRows(f))
			if err := rc.engine.Ingest(int(f.StreamID), rows); err != nil {
				rc.counters.Inc(CtrRecvErrors)
				return fmt.Errorf("transport: apply epoch %d: %w", seq, err)
			}
			continue
		}
		if err := rc.ingest(f); err != nil {
			rc.counters.Inc(CtrRecvErrors)
			return fmt.Errorf("transport: apply epoch %d: %w", seq, err)
		}
	}
	rc.engine.ObserveWatermark(src, watermark)
	rc.applied[src] = seq
	rc.counters.Inc(CtrEpochsApplied)
	obs.Traces().MarkDone(src, seq, time.Now().UnixMicro())
	return nil
}

// frameRows materializes a frame's records as rows that own their
// memory: columnar frames append through the decoder's fresh per-batch
// arenas, so the result is safe to hold past RecycleArenas.
func frameRows(f wire.Frame) telemetry.Batch {
	if f.Cols != nil {
		var rows telemetry.Batch
		f.Cols.AppendRows(&rows)
		return rows
	}
	return f.Records
}

// framesBytes sums an epoch's payload bytes (the unit the admission
// buckets meter).
func framesBytes(frames []wire.Frame) int64 {
	var n int64
	for _, f := range frames {
		n += f.PayloadBytes()
	}
	return n
}

// appendAckTarget folds an ack into the target list, replacing an
// earlier entry for the same source (acks are cumulative; the newest
// durable frontier and replay flag win).
func appendAckTarget(targets []ackTarget, t ackTarget) []ackTarget {
	for i := range targets {
		if targets[i].src == t.src {
			targets[i].seq = t.seq
			targets[i].replay = targets[i].replay || t.replay
			return targets
		}
	}
	return append(targets, t)
}

// queueDelayedLocked parks one epoch in the source's delay queue,
// row-materializing its frames so nothing references the connection's
// decode arenas.
func (rc *Receiver) queueDelayedLocked(src uint32, e *wire.EpochEnd, staged []wire.Frame) {
	mat := make([]wire.Frame, 0, len(staged))
	for _, f := range staged {
		if f.Cols != nil {
			f = wire.Frame{StreamID: f.StreamID, Source: f.Source, Records: frameRows(f)}
		}
		mat = append(mat, f)
	}
	var arrival time.Time
	if rc.admit != nil {
		arrival = rc.admit.Now()
	}
	rc.delayed[src] = append(rc.delayed[src], &delayedEpoch{
		seq: e.Seq, watermark: e.Watermark, bytes: framesBytes(staged),
		arrival: arrival, frames: mat,
	})
	rc.delayedN++
}

// drainDelayedLocked applies every delayed epoch the refilled buckets
// now afford, visiting sources in class-priority order (gold first) so
// scarce budget lands on the highest SLO class. Returns acks for every
// source whose durable frontier advanced.
func (rc *Receiver) drainDelayedLocked() []ackTarget {
	if rc.admit == nil || rc.delayedN == 0 {
		return nil
	}
	srcs := make([]uint32, 0, len(rc.delayed))
	for src, q := range rc.delayed {
		if len(q) > 0 {
			srcs = append(srcs, src)
		}
	}
	sort.Slice(srcs, func(i, j int) bool {
		ci, cj := rc.admit.Class(srcs[i]), rc.admit.Class(srcs[j])
		if ci != cj {
			return ci > cj
		}
		return srcs[i] < srcs[j]
	})
	var targets []ackTarget
	for _, src := range srcs {
		q := rc.delayed[src]
		drained := false
		for len(q) > 0 && rc.admit.TryDrain(src, q[0].bytes) {
			ep := q[0]
			q = q[1:]
			if err := rc.drainOneLocked(src, ep); err != nil {
				// The engine rejected the epoch (poisoned payload): it is
				// consumed, not re-queued — the error already counted.
				break
			}
			drained = true
		}
		if len(q) == 0 {
			delete(rc.delayed, src)
		} else {
			rc.delayed[src] = q
		}
		if drained && !rc.manualAck {
			if aw := rc.writers[src]; aw != nil {
				targets = appendAckTarget(targets, ackTarget{aw: aw, src: src, seq: rc.durable[src]})
			}
		}
	}
	return targets
}

// forceDrainLocked empties one source's delay queue unconditionally
// (bucket debt instead of data loss) — the escape hatch when a sequence
// hole above the queue turned out to be unfillable.
func (rc *Receiver) forceDrainLocked(src uint32, targets []ackTarget) []ackTarget {
	q := rc.delayed[src]
	if len(q) == 0 {
		return targets
	}
	drained := false
	for _, ep := range q {
		rc.admit.ForceDrain(src, ep.bytes)
		if err := rc.drainOneLocked(src, ep); err != nil {
			break
		}
		drained = true
	}
	delete(rc.delayed, src)
	if drained && !rc.manualAck {
		if aw := rc.writers[src]; aw != nil {
			targets = appendAckTarget(targets, ackTarget{aw: aw, src: src, seq: rc.durable[src]})
		}
	}
	return targets
}

// drainOneLocked applies one delayed epoch and advances the source's
// frontiers, observing its queueing latency on the tenant's class
// histogram. The caller has already charged the admission bucket.
func (rc *Receiver) drainOneLocked(src uint32, ep *delayedEpoch) error {
	rc.delayedN--
	degraded := rc.admit.DegradedRate(src) > 0
	if err := rc.applyEpochLocked(src, ep.seq, ep.watermark, ep.frames, degraded); err != nil {
		return err
	}
	rc.admit.NoteDrained(src)
	if !ep.arrival.IsZero() {
		rc.admit.ObserveCommitLatency(src, rc.admit.Now().Sub(ep.arrival))
	}
	if !rc.manualAck {
		rc.durable[src] = ep.seq
	}
	return nil
}

// shedOverflowLocked enforces the global delay-queue bound: while over
// it, the newest delayed epoch of the lowest-class source is shed. The
// shed epoch's sequence hole is healed later by gap detection — the
// epoch is still unacked in its agent's replay buffer.
func (rc *Receiver) shedOverflowLocked(targets []ackTarget) []ackTarget {
	max := rc.admit.MaxDelayed()
	for rc.delayedN > max {
		victim := uint32(0)
		victimClass := admission.Class(0)
		found := false
		for src, q := range rc.delayed {
			if len(q) == 0 {
				continue
			}
			c := rc.admit.Class(src)
			if !found || c < victimClass || (c == victimClass && src < victim) {
				victim, victimClass, found = src, c, true
			}
		}
		if !found {
			return targets
		}
		q := rc.delayed[victim]
		ep := q[len(q)-1]
		rc.delayed[victim] = q[:len(q)-1]
		rc.delayedN--
		rc.counters.Inc(CtrEpochsShed)
		rc.admit.NoteShed(victim, ep.seq, "delay_queue_full", true)
		if aw := rc.writers[victim]; aw != nil {
			// Tell the victim's shipper to slow down and replay later.
			targets = appendAckTarget(targets, ackTarget{aw: aw, src: victim, seq: rc.durable[victim], replay: true})
		}
	}
	return targets
}

// noteShed meters one shed epoch on the receiver's counters and, when a
// controller is installed, its decision trace.
func (rc *Receiver) noteShed(src uint32, seq uint64, cause string, fromQueue bool) {
	rc.counters.Inc(CtrEpochsShed)
	if ctrl := rc.admission(); ctrl != nil {
		// The controller's shed decision reaches the flight recorder via
		// the decision-log notify hook.
		ctrl.NoteShed(src, seq, cause, fromQueue)
	} else if fl := rc.flightRecorder(); fl != nil {
		// No controller, no decision emitted: trigger the dump directly.
		fl.trigger("shed:"+cause, true)
	}
}

// durableSeq reads a source's durable frontier.
func (rc *Receiver) durableSeq(src uint32) uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.durable[src]
}

// sendAcks writes the acks a commit produced, outside the receiver's
// mutex, throttling hints computed at send time.
func (rc *Receiver) sendAcks(targets []ackTarget) {
	for _, t := range targets {
		if err := t.aw.sendAck(t.src, t.seq, rc.throttleFor(t.src), t.replay); err == nil {
			rc.counters.Inc(CtrAcksSent)
			// Acks are cumulative: every traced epoch at or below the acked
			// frontier is complete now.
			obs.Traces().FinishUpTo(t.src, t.seq, time.Now().UnixMicro())
		}
	}
}

func (rc *Receiver) consume(f wire.Frame) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if f.StreamID == WatermarkStreamID {
		eachWatermark(f, func(wm int64) { rc.engine.ObserveWatermark(f.Source, wm) })
		return nil
	}
	return rc.ingest(f)
}

// RegisterSource pre-registers a source so watermark merging waits for
// it (call before the source's first frame).
func (rc *Receiver) RegisterSource(id uint32) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.engine.RegisterSource(id)
}

// AppliedSeq returns the newest epoch sequence applied for a source
// (zero before its first sequenced epoch).
func (rc *Receiver) AppliedSeq(source uint32) uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.applied[source]
}

// SetApplied restores a source's applied (and durable) epoch sequence
// from a recovered snapshot; epochs at or below it will be discarded as
// duplicates.
func (rc *Receiver) SetApplied(source uint32, seq uint64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if seq > rc.applied[source] {
		rc.applied[source] = seq
	}
	if seq > rc.durable[source] {
		rc.durable[source] = seq
	}
}

// Freeze runs f while epoch application is paused, passing a copy of the
// per-source applied sequences. The recovery manager snapshots the
// engine inside f so the captured state and sequence numbers are
// mutually consistent.
func (rc *Receiver) Freeze(f func(applied map[uint32]uint64)) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	cp := make(map[uint32]uint64, len(rc.applied))
	for k, v := range rc.applied {
		cp[k] = v
	}
	f(cp)
}

// AckSeqs marks the given per-source epochs durable and acknowledges
// them on each source's live connection (recovery-manager mode; pair
// with SetManualAck(true)).
func (rc *Receiver) AckSeqs(seqs map[uint32]uint64) {
	type target struct {
		aw  *ackWriter
		src uint32
		seq uint64
	}
	var targets []target
	rc.mu.Lock()
	for src, seq := range seqs {
		if seq > rc.durable[src] {
			rc.durable[src] = seq
		}
		if aw := rc.writers[src]; aw != nil {
			targets = append(targets, target{aw, src, rc.durable[src]})
		}
	}
	rc.mu.Unlock()
	for _, t := range targets {
		if err := t.aw.sendAck(t.src, t.seq, rc.throttleFor(t.src), false); err == nil {
			rc.counters.Inc(CtrAcksSent)
			obs.Traces().FinishUpTo(t.src, t.seq, time.Now().UnixMicro())
		}
	}
}

// Advance flushes the engine up to the merged watermark and returns new
// final results. With admission control installed it first drains every
// delayed epoch the refilled budgets afford (time passes between
// commits, so Advance is the other natural drain point) and rescales
// results whose windows were ingested under degraded sampling back to
// estimated exact magnitudes.
func (rc *Receiver) Advance() telemetry.Batch {
	rc.mu.Lock()
	targets := rc.drainDelayedLocked()
	batch := rc.engine.Advance()
	ctrl := rc.admit
	rc.mu.Unlock()
	rc.sendAcks(targets)
	if ctrl != nil {
		ctrl.Degrader().Rescale(batch)
	}
	return batch
}

// BytesIn returns payload bytes received.
func (rc *Receiver) BytesIn() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bytesIn
}

// Frames returns the number of frames received.
func (rc *Receiver) Frames() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.frames
}
