package transport

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// runSourceOverPipe runs a source pipeline for the given epochs, shipping
// every epoch over an in-memory pipe into an SP receiver, and returns the
// final rows for window 0.
func runSourceOverPipe(t *testing.T, factors []float64) map[telemetry.GroupKey]telemetry.AggRow {
	t.Helper()
	q := plan.S2SProbe()
	src, err := stream.NewPipeline(q, stream.DefaultOptions(1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = src.SetLoadFactors(factors)
	engine, err := stream.NewSPEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	rc.RegisterSource(7)

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- rc.HandleStream(server) }()

	shipper := NewShipper(7, client)
	gen := workload.NewPingGen(workload.DefaultPingConfig(21))
	for e := 0; e < 14; e++ {
		var batch telemetry.Batch
		if e < 10 {
			batch = gen.NextWindow(1_000_000)
		} else {
			src.ObserveTime(int64(e+1) * 1_000_000)
		}
		res := src.RunEpoch(batch)
		if err := shipper.ShipEpoch(res); err != nil {
			t.Fatal(err)
		}
	}
	_ = client.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	rows := map[telemetry.GroupKey]telemetry.AggRow{}
	for _, rec := range rc.Advance() {
		row := rec.Data.(*telemetry.AggRow)
		if row.Window != 0 {
			continue
		}
		if prev, ok := rows[row.Key]; ok {
			prev.Merge(*row)
			rows[row.Key] = prev
		} else {
			rows[row.Key] = *row
		}
	}
	return rows
}

func TestShipOverPipeEquivalence(t *testing.T) {
	allSP := runSourceOverPipe(t, []float64{0, 0, 0})
	split := runSourceOverPipe(t, []float64{1, 1, 0.5})
	if len(allSP) == 0 {
		t.Fatal("no rows")
	}
	if len(split) != len(allSP) {
		t.Fatalf("rows: %d vs %d", len(split), len(allSP))
	}
	for k, want := range allSP {
		got, ok := split[k]
		if !ok || got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("group %v: %+v vs %+v", k, got, want)
		}
	}
}

func TestShipperAccounting(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		buf := make([]byte, 1<<16)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	sh := NewShipper(1, client)
	res := stream.EpochResult{
		Drains: []telemetry.Batch{
			{telemetry.NewProbeRecord(&telemetry.PingProbe{Timestamp: 1})},
		},
		ResultStage: 1,
		Watermark:   5,
	}
	if err := sh.ShipEpoch(res); err != nil {
		t.Fatal(err)
	}
	if sh.Frames() != 2 { // one drain + one watermark
		t.Fatalf("frames = %d", sh.Frames())
	}
	if sh.BytesOut() != telemetry.PingProbeWireSize+17 { // drain + watermark
		t.Fatalf("bytes = %d", sh.BytesOut())
	}
	_ = client.Close()
}

func TestReceiverWatermarkRouting(t *testing.T) {
	engine, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- rc.HandleStream(server) }()

	sh := NewShipper(3, client)
	rec := telemetry.NewProbeRecord(&telemetry.PingProbe{Timestamp: 1_000_000, SrcIP: 1, DstIP: 2, RTTMicros: 50})
	res := stream.EpochResult{
		Drains:      []telemetry.Batch{{rec}},
		ResultStage: 3,
		Watermark:   20_000_000,
	}
	if err := sh.ShipEpoch(res); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	out := rc.Advance()
	if len(out) != 1 {
		t.Fatalf("rows = %d", len(out))
	}
	if rc.Frames() != 2 || rc.BytesIn() != telemetry.PingProbeWireSize+17 {
		t.Fatalf("accounting: frames=%d bytes=%d", rc.Frames(), rc.BytesIn())
	}
}

func TestReceiverBadStage(t *testing.T) {
	engine, _ := stream.NewSPEngine(plan.S2SProbe())
	rc := NewReceiver(engine)
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- rc.HandleStream(server) }()
	sh := NewShipper(1, client)
	rec := telemetry.NewProbeRecord(&telemetry.PingProbe{})
	res := stream.EpochResult{
		Drains:      nil,
		Results:     telemetry.Batch{rec},
		ResultStage: 99, // invalid stage
		Watermark:   1,
	}
	_ = sh.ShipEpoch(res)
	_ = client.Close()
	if err := <-done; err == nil {
		t.Fatal("invalid stage should propagate an error")
	}
}

func TestTCPServerEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	q := plan.S2SProbe()
	engine, err := stream.NewSPEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(engine)
	srv := NewServer(rc)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ctx, ln)
	}()

	// Two agents ship concurrently.
	var agents sync.WaitGroup
	for id := uint32(1); id <= 2; id++ {
		rc.RegisterSource(id)
		agents.Add(1)
		go func(id uint32) {
			defer agents.Done()
			sh, closeFn, err := Dial(id, ln.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer closeFn()
			src, err := stream.NewPipeline(q, stream.DefaultOptions(1.0, 0))
			if err != nil {
				t.Errorf("pipeline: %v", err)
				return
			}
			_ = src.SetLoadFactors([]float64{1, 1, 1})
			cfg := workload.DefaultPingConfig(uint64(id) * 31)
			cfg.SrcIP = 0x0A000000 + id
			gen := workload.NewPingGen(cfg)
			for e := 0; e < 13; e++ {
				var batch telemetry.Batch
				if e < 10 {
					batch = gen.NextWindow(1_000_000)
				} else {
					src.ObserveTime(int64(e+1) * 1_000_000)
				}
				if err := sh.ShipEpoch(src.RunEpoch(batch)); err != nil {
					t.Errorf("ship: %v", err)
					return
				}
			}
		}(id)
	}
	agents.Wait()

	// Wait for the server to drain both connections.
	deadline := time.Now().Add(5 * time.Second)
	var rows telemetry.Batch
	for time.Now().Before(deadline) {
		rows = append(rows, rc.Advance()...)
		if len(rows) > 0 && rc.Frames() >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(rows) == 0 {
		t.Fatal("no merged results from TCP agents")
	}
	_ = srv.Close()
	cancel()
	wg.Wait()
}
