// Package wire implements the binary serialization used between data
// source agents and stream processors. The paper uses the Kryo framework;
// we substitute a compact, dependency-free codec: each record is a type
// tag byte followed by fixed-width fields (encoding/binary, big endian)
// and uvarint-prefixed strings.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"jarvis/internal/telemetry"
)

// Type tags identifying the payload kind on the wire.
const (
	TagPingProbe   byte = 0x01
	TagToRProbe    byte = 0x02
	TagLogLine     byte = 0x03
	TagJobStats    byte = 0x04
	TagAggRow      byte = 0x05
	TagWatermark   byte = 0x06
	TagQuantileRow byte = 0x07

	// Control tags (fault-tolerance protocol + snapshot codec).
	TagHello          byte = 0x08
	TagAck            byte = 0x09
	TagEpochEnd       byte = 0x0A
	TagSnapshotHeader byte = 0x0B
	TagSourceState    byte = 0x0C
	TagLoadFactors    byte = 0x0D
	TagReplayEpoch    byte = 0x0E
	TagStageMeta      byte = 0x10 // delta-snapshot stage metadata

	// Replication tags (internal/ha primary ↔ standby protocol).
	TagReplHello    byte = 0x11
	TagReplSnapshot byte = 0x12
	TagReplAck      byte = 0x13
)

// ErrUnknownTag is returned when decoding a record with an unregistered
// type tag.
var ErrUnknownTag = errors.New("wire: unknown type tag")

// ErrShortBuffer is returned when a payload is truncated.
var ErrShortBuffer = errors.New("wire: short buffer")

// Watermark is a control message announcing event-time progress on a
// stream. Control proxies replicate watermarks onto the drain path so the
// stream processor can merge streams correctly (paper §V).
type Watermark struct {
	Time int64 // event-time low watermark, microseconds
}

// EncodeRecord appends the serialized form of rec to dst and returns the
// extended slice. The record's event time, window id and payload are
// preserved; WireSize is recomputed from the payload on decode.
func EncodeRecord(dst []byte, rec telemetry.Record) ([]byte, error) {
	switch p := rec.Data.(type) {
	case *telemetry.PingProbe:
		dst = append(dst, TagPingProbe)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Timestamp))
		dst = binary.BigEndian.AppendUint32(dst, p.SrcIP)
		dst = binary.BigEndian.AppendUint32(dst, p.SrcCluster)
		dst = binary.BigEndian.AppendUint32(dst, p.DstIP)
		dst = binary.BigEndian.AppendUint32(dst, p.DstCluster)
		dst = binary.BigEndian.AppendUint32(dst, p.RTTMicros)
		dst = binary.BigEndian.AppendUint32(dst, p.ErrCode)
		return dst, nil
	case *telemetry.ToRProbe:
		dst = append(dst, TagToRProbe)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Timestamp))
		dst = binary.BigEndian.AppendUint32(dst, p.SrcToR)
		dst = binary.BigEndian.AppendUint32(dst, p.DstToR)
		dst = binary.BigEndian.AppendUint32(dst, p.RTTMicros)
		return dst, nil
	case *telemetry.LogLine:
		dst = append(dst, TagLogLine)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Timestamp))
		dst = appendString(dst, p.Raw)
		return dst, nil
	case *telemetry.JobStats:
		dst = append(dst, TagJobStats)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Timestamp))
		dst = appendString(dst, p.Tenant)
		dst = appendString(dst, p.StatName)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.Stat))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(p.Bucket)))
		return dst, nil
	case *telemetry.AggRow:
		dst = append(dst, TagAggRow)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, p.Key.Num)
		dst = appendString(dst, p.Key.Str)
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Window))
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Count))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.Sum))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.Min))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.Max))
		return dst, nil
	case *telemetry.QuantileRow:
		dst = append(dst, TagQuantileRow)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, p.Key.Num)
		dst = appendString(dst, p.Key.Str)
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Window))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.Lo))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.Hi))
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Total))
		dst = binary.AppendUvarint(dst, uint64(len(p.Counts)))
		for _, c := range p.Counts {
			dst = binary.AppendUvarint(dst, uint64(c))
		}
		return dst, nil
	case *Watermark:
		dst = append(dst, TagWatermark)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Time))
		return dst, nil
	case *Hello:
		dst = append(dst, TagHello)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint32(dst, p.Source)
		dst = binary.BigEndian.AppendUint64(dst, p.Seq)
		dst = binary.AppendUvarint(dst, uint64(p.Version))
		dst = binary.AppendUvarint(dst, p.Term)
		dst = appendBool(dst, p.Compress)
		dst = append(dst, p.Class)
		dst = appendString(dst, p.Tenant)
		return dst, nil
	case *Ack:
		dst = append(dst, TagAck)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint32(dst, p.Source)
		dst = binary.BigEndian.AppendUint64(dst, p.Seq)
		dst = binary.AppendUvarint(dst, uint64(p.Version))
		dst = binary.AppendUvarint(dst, p.Term)
		dst = appendBool(dst, p.Compress)
		dst = binary.AppendUvarint(dst, p.ThrottleMicros)
		dst = appendBool(dst, p.Replay)
		return dst, nil
	case *EpochEnd:
		dst = append(dst, TagEpochEnd)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, p.Seq)
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Watermark))
		// Trace-context extension: emitted only when armed, so untraced
		// epochs keep the pre-trace encoding byte for byte.
		if p.TraceID != 0 {
			dst = binary.AppendUvarint(dst, p.TraceID)
			dst = binary.AppendUvarint(dst, zigzag(p.StartMicros))
			dst = binary.AppendUvarint(dst, p.GenMicros)
			dst = binary.AppendUvarint(dst, p.PipeMicros)
			dst = binary.AppendUvarint(dst, p.EncMicros)
			dst = binary.AppendUvarint(dst, zigzag(p.SentMicros))
		}
		return dst, nil
	case *SnapshotHeader:
		dst = append(dst, TagSnapshotHeader)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, p.Seq)
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Watermark))
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.EmittedWM))
		dst = binary.BigEndian.AppendUint64(dst, p.Acked)
		dst = binary.AppendUvarint(dst, p.BaseID)
		if p.Delta {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.AppendUvarint(dst, p.Term)
		return dst, nil
	case *StageMeta:
		dst = append(dst, TagStageMeta)
		dst = appendHeader(dst, rec)
		dst = binary.AppendUvarint(dst, uint64(p.Stage))
		if p.Replace {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.AppendUvarint(dst, uint64(len(p.Closed)))
		prev := int64(0)
		for _, w := range p.Closed {
			dst = binary.AppendUvarint(dst, zigzag(w-prev))
			prev = w
		}
		return dst, nil
	case *SourceState:
		dst = append(dst, TagSourceState)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint32(dst, p.Source)
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Watermark))
		dst = binary.BigEndian.AppendUint64(dst, p.AppliedSeq)
		return dst, nil
	case *LoadFactors:
		dst = append(dst, TagLoadFactors)
		dst = appendHeader(dst, rec)
		dst = binary.AppendUvarint(dst, uint64(len(p.Factors)))
		for _, f := range p.Factors {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
		}
		return dst, nil
	case *ReplayEpoch:
		dst = append(dst, TagReplayEpoch)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, p.Seq)
		dst = binary.AppendUvarint(dst, uint64(len(p.Data)))
		return append(dst, p.Data...), nil
	case *ReplHello:
		dst = append(dst, TagReplHello)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, p.LastID)
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.LogWM))
		return dst, nil
	case *ReplSnapshot:
		dst = append(dst, TagReplSnapshot)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, p.ID)
		dst = binary.AppendUvarint(dst, p.BaseID)
		dst = binary.BigEndian.AppendUint64(dst, p.Seq)
		dst = binary.AppendUvarint(dst, p.Term)
		if p.Delta {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.AppendUvarint(dst, uint64(len(p.Data)))
		return append(dst, p.Data...), nil
	case *ReplAck:
		dst = append(dst, TagReplAck)
		dst = appendHeader(dst, rec)
		dst = binary.BigEndian.AppendUint64(dst, p.ID)
		dst = binary.BigEndian.AppendUint64(dst, p.Seq)
		return dst, nil
	default:
		return nil, fmt.Errorf("wire: cannot encode payload type %T", rec.Data)
	}
}

func appendHeader(dst []byte, rec telemetry.Record) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(rec.Time))
	dst = binary.BigEndian.AppendUint64(dst, uint64(rec.Window))
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.err = ErrShortBuffer
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.err = ErrShortBuffer
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, k := binary.Uvarint(r.buf[r.off:])
	if k <= 0 {
		r.err = ErrShortBuffer
		return 0
	}
	r.off += k
	return v
}

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.err = ErrShortBuffer
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// rawBytes returns a uvarint-prefixed byte string as a view into the
// buffer (no copy) — callers must copy or intern before the buffer is
// reused.
func (r *reader) rawBytes() []byte {
	if r.err != nil {
		return nil
	}
	n, k := binary.Uvarint(r.buf[r.off:])
	if k <= 0 {
		r.err = ErrShortBuffer
		return nil
	}
	r.off += k
	if n > uint64(len(r.buf)-r.off) {
		r.err = ErrShortBuffer
		return nil
	}
	out := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return out
}

func (r *reader) bytes() []byte {
	if r.err != nil {
		return nil
	}
	n, k := binary.Uvarint(r.buf[r.off:])
	if k <= 0 {
		r.err = ErrShortBuffer
		return nil
	}
	r.off += k
	if n > uint64(len(r.buf)-r.off) {
		r.err = ErrShortBuffer
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

func (r *reader) str() string {
	if r.err != nil {
		return ""
	}
	n, k := binary.Uvarint(r.buf[r.off:])
	if k <= 0 {
		r.err = ErrShortBuffer
		return ""
	}
	r.off += k
	if n > uint64(len(r.buf)-r.off) {
		r.err = ErrShortBuffer
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// DecodeRecord parses one record from buf, returning the record and the
// number of bytes consumed. WireSize is restored to the schema's canonical
// accounting size.
func DecodeRecord(buf []byte) (telemetry.Record, int, error) {
	if len(buf) == 0 {
		return telemetry.Record{}, 0, ErrShortBuffer
	}
	r := &reader{buf: buf, off: 1}
	rec := telemetry.Record{}
	rec.Time = int64(r.u64())
	rec.Window = int64(r.u64())
	switch buf[0] {
	case TagPingProbe:
		p := &telemetry.PingProbe{}
		p.Timestamp = int64(r.u64())
		p.SrcIP = r.u32()
		p.SrcCluster = r.u32()
		p.DstIP = r.u32()
		p.DstCluster = r.u32()
		p.RTTMicros = r.u32()
		p.ErrCode = r.u32()
		rec.Data = p
		rec.WireSize = telemetry.PingProbeWireSize
	case TagToRProbe:
		p := &telemetry.ToRProbe{}
		p.Timestamp = int64(r.u64())
		p.SrcToR = r.u32()
		p.DstToR = r.u32()
		p.RTTMicros = r.u32()
		rec.Data = p
		rec.WireSize = telemetry.ToRProbeWireSize
	case TagLogLine:
		p := &telemetry.LogLine{}
		p.Timestamp = int64(r.u64())
		p.Raw = r.str()
		rec.Data = p
		rec.WireSize = len(p.Raw)
	case TagJobStats:
		p := &telemetry.JobStats{}
		p.Timestamp = int64(r.u64())
		p.Tenant = r.str()
		p.StatName = r.str()
		p.Stat = math.Float64frombits(r.u64())
		p.Bucket = int(int32(r.u32()))
		rec.Data = p
		rec.WireSize = p.JobStatsWireSize()
	case TagAggRow:
		p := &telemetry.AggRow{}
		p.Key.Num = r.u64()
		p.Key.Str = r.str()
		p.Window = int64(r.u64())
		p.Count = int64(r.u64())
		p.Sum = math.Float64frombits(r.u64())
		p.Min = math.Float64frombits(r.u64())
		p.Max = math.Float64frombits(r.u64())
		rec.Data = p
		rec.WireSize = p.AggRowWireSize()
	case TagQuantileRow:
		p := &telemetry.QuantileRow{}
		p.Key.Num = r.u64()
		p.Key.Str = r.str()
		p.Window = int64(r.u64())
		p.Lo = math.Float64frombits(r.u64())
		p.Hi = math.Float64frombits(r.u64())
		p.Total = int64(r.u64())
		n := r.uvarint()
		if r.err == nil && n > uint64(len(buf)) {
			return telemetry.Record{}, 0, ErrShortBuffer
		}
		if r.err == nil {
			p.Counts = make([]int64, n)
			for i := range p.Counts {
				p.Counts[i] = int64(r.uvarint())
			}
		}
		rec.Data = p
		rec.WireSize = p.WireSize()
	case TagWatermark:
		p := &Watermark{}
		p.Time = int64(r.u64())
		rec.Data = p
		rec.WireSize = 17
	case TagHello:
		p := &Hello{}
		p.Source = r.u32()
		p.Seq = r.u64()
		// The version field was appended in v2 builds, the HA term after
		// it, the compression capability after that, and the admission
		// extension (SLO class + tenant) after that; a genuinely old
		// peer's Hello ends early, which decodes as Version 0 (= v1),
		// Term 0 (pre-HA), Compress false and an unspecified class with
		// no tenant label. Hello records must travel in single-record
		// frames for these trailing extensions to be unambiguous (they
		// always have).
		if r.err == nil && r.off < len(buf) {
			p.Version = uint32(r.uvarint())
		}
		if r.err == nil && r.off < len(buf) {
			p.Term = r.uvarint()
		}
		if r.err == nil && r.off < len(buf) {
			p.Compress = r.u8() != 0
		}
		if r.err == nil && r.off < len(buf) {
			p.Class = r.u8()
		}
		if r.err == nil && r.off < len(buf) {
			p.Tenant = r.str()
		}
		rec.Data = p
		rec.WireSize = 29
	case TagAck:
		p := &Ack{}
		p.Source = r.u32()
		p.Seq = r.u64()
		if r.err == nil && r.off < len(buf) {
			p.Version = uint32(r.uvarint())
		}
		if r.err == nil && r.off < len(buf) {
			p.Term = r.uvarint()
		}
		if r.err == nil && r.off < len(buf) {
			p.Compress = r.u8() != 0
		}
		// Admission extension: throttle hint + replay request.
		if r.err == nil && r.off < len(buf) {
			p.ThrottleMicros = r.uvarint()
		}
		if r.err == nil && r.off < len(buf) {
			p.Replay = r.u8() != 0
		}
		rec.Data = p
		rec.WireSize = 29
	case TagEpochEnd:
		p := &EpochEnd{}
		p.Seq = r.u64()
		p.Watermark = int64(r.u64())
		// Trace-context extension: a pre-trace peer's EpochEnd ends here
		// and decodes as TraceID 0 (untraced). EpochEnd travels alone in
		// its frame, so trailing bytes are unambiguous (same convention as
		// the Hello/Ack extensions).
		if r.err == nil && r.off < len(buf) {
			p.TraceID = r.uvarint()
		}
		if r.err == nil && r.off < len(buf) {
			p.StartMicros = unzigzag(r.uvarint())
		}
		if r.err == nil && r.off < len(buf) {
			p.GenMicros = r.uvarint()
		}
		if r.err == nil && r.off < len(buf) {
			p.PipeMicros = r.uvarint()
		}
		if r.err == nil && r.off < len(buf) {
			p.EncMicros = r.uvarint()
		}
		if r.err == nil && r.off < len(buf) {
			p.SentMicros = unzigzag(r.uvarint())
		}
		rec.Data = p
		rec.WireSize = 33
	case TagSnapshotHeader:
		p := &SnapshotHeader{}
		p.Seq = r.u64()
		p.Watermark = int64(r.u64())
		p.EmittedWM = int64(r.u64())
		p.Acked = r.u64()
		// BaseID/Delta were appended for delta snapshots and Term for HA;
		// older snapshot files end early and decode as a full, term-0
		// snapshot.
		if r.err == nil && r.off < len(buf) {
			p.BaseID = r.uvarint()
			p.Delta = r.u8() != 0
		}
		if r.err == nil && r.off < len(buf) {
			p.Term = r.uvarint()
		}
		rec.Data = p
		rec.WireSize = 49
	case TagStageMeta:
		p := &StageMeta{}
		p.Stage = int(r.uvarint())
		p.Replace = r.u8() != 0
		n := r.uvarint()
		if r.err == nil && n > uint64(len(buf)) {
			return telemetry.Record{}, 0, ErrShortBuffer
		}
		if r.err == nil && n > 0 {
			p.Closed = make([]int64, n)
			prev := int64(0)
			for i := range p.Closed {
				prev += unzigzag(r.uvarint())
				p.Closed[i] = prev
			}
		}
		rec.Data = p
		rec.WireSize = 20 + 9*len(p.Closed)
	case TagSourceState:
		p := &SourceState{}
		p.Source = r.u32()
		p.Watermark = int64(r.u64())
		p.AppliedSeq = r.u64()
		rec.Data = p
		rec.WireSize = 37
	case TagLoadFactors:
		p := &LoadFactors{}
		n := r.uvarint()
		if r.err == nil && n > uint64(len(buf))/8 {
			return telemetry.Record{}, 0, ErrShortBuffer
		}
		if r.err == nil {
			p.Factors = make([]float64, n)
			for i := range p.Factors {
				p.Factors[i] = math.Float64frombits(r.u64())
			}
		}
		rec.Data = p
		rec.WireSize = 18 + 8*len(p.Factors)
	case TagReplayEpoch:
		p := &ReplayEpoch{}
		p.Seq = r.u64()
		p.Data = r.bytes()
		rec.Data = p
		rec.WireSize = 26 + len(p.Data)
	case TagReplHello:
		p := &ReplHello{}
		p.LastID = r.u64()
		p.LogWM = int64(r.u64())
		rec.Data = p
		rec.WireSize = 33
	case TagReplSnapshot:
		p := &ReplSnapshot{}
		p.ID = r.u64()
		p.BaseID = r.uvarint()
		p.Seq = r.u64()
		p.Term = r.uvarint()
		p.Delta = r.u8() != 0
		p.Data = r.bytes()
		rec.Data = p
		rec.WireSize = 40 + len(p.Data)
	case TagReplAck:
		p := &ReplAck{}
		p.ID = r.u64()
		p.Seq = r.u64()
		rec.Data = p
		rec.WireSize = 33
	default:
		return telemetry.Record{}, 0, fmt.Errorf("%w: 0x%02x", ErrUnknownTag, buf[0])
	}
	if r.err != nil {
		return telemetry.Record{}, 0, r.err
	}
	return rec, r.off, nil
}
