package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"jarvis/internal/telemetry"
)

func roundTrip(t *testing.T, rec telemetry.Record) telemetry.Record {
	t.Helper()
	buf, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, n, err := DecodeRecord(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
	}
	return got
}

func TestPingProbeRoundTrip(t *testing.T) {
	p := &telemetry.PingProbe{
		Timestamp: 1234567, SrcIP: 0x0A000001, SrcCluster: 3,
		DstIP: 0x0A000002, DstCluster: 4, RTTMicros: 812, ErrCode: 0,
	}
	rec := telemetry.NewProbeRecord(p)
	rec.Window = 9
	got := roundTrip(t, rec)
	if got.Time != rec.Time || got.Window != 9 || got.WireSize != telemetry.PingProbeWireSize {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Data, p) {
		t.Fatalf("payload = %+v, want %+v", got.Data, p)
	}
}

func TestToRProbeRoundTrip(t *testing.T) {
	p := &telemetry.ToRProbe{Timestamp: 55, SrcToR: 1, DstToR: 2, RTTMicros: 777}
	rec := telemetry.Record{Time: 55, WireSize: telemetry.ToRProbeWireSize, Data: p}
	got := roundTrip(t, rec)
	if !reflect.DeepEqual(got.Data, p) {
		t.Fatalf("payload = %+v", got.Data)
	}
	if got.WireSize != telemetry.ToRProbeWireSize {
		t.Fatalf("wire size = %d", got.WireSize)
	}
}

func TestLogLineRoundTrip(t *testing.T) {
	rec := telemetry.NewLogRecord(99, "tenant name=x, cpu util=7")
	got := roundTrip(t, rec)
	if !reflect.DeepEqual(got.Data, rec.Data) {
		t.Fatalf("payload = %+v", got.Data)
	}
	if got.WireSize != rec.WireSize {
		t.Fatalf("wire size = %d, want %d", got.WireSize, rec.WireSize)
	}
}

func TestJobStatsRoundTrip(t *testing.T) {
	p := &telemetry.JobStats{Timestamp: 5, Tenant: "t1", StatName: "cpu util", Stat: 74.25, Bucket: -3}
	rec := telemetry.Record{Time: 5, WireSize: p.JobStatsWireSize(), Data: p}
	got := roundTrip(t, rec)
	if !reflect.DeepEqual(got.Data, p) {
		t.Fatalf("payload = %+v", got.Data)
	}
}

func TestAggRowRoundTrip(t *testing.T) {
	row := telemetry.NewAggRow(telemetry.StrKey("a|b|1"), 7, 3.5)
	row.Observe(math.Inf(1))
	rec := telemetry.NewAggRecord(row, 1000)
	got := roundTrip(t, rec)
	gotRow := got.Data.(*telemetry.AggRow)
	if *gotRow != row {
		t.Fatalf("row = %+v, want %+v", *gotRow, row)
	}
}

func TestWatermarkRoundTrip(t *testing.T) {
	rec := telemetry.Record{Time: 42, Data: &Watermark{Time: 42}}
	got := roundTrip(t, rec)
	if wm, ok := got.Data.(*Watermark); !ok || wm.Time != 42 {
		t.Fatalf("payload = %+v", got.Data)
	}
}

func TestEncodeUnknownPayload(t *testing.T) {
	_, err := EncodeRecord(nil, telemetry.Record{Data: struct{}{}})
	if err == nil {
		t.Fatal("expected error for unknown payload type")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeRecord(nil); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("nil buf: %v", err)
	}
	if _, _, err := DecodeRecord([]byte{0xFF, 0, 0}); !errors.Is(err, ErrUnknownTag) {
		t.Fatalf("unknown tag: %v", err)
	}
	// Truncated probe.
	full, _ := EncodeRecord(nil, telemetry.NewProbeRecord(&telemetry.PingProbe{}))
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := DecodeRecord(full[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestPingProbeQuickRoundTrip(t *testing.T) {
	f := func(ts int64, src, dst, rtt, errc uint32, window int64) bool {
		p := &telemetry.PingProbe{Timestamp: ts, SrcIP: src, DstIP: dst, RTTMicros: rtt, ErrCode: errc}
		rec := telemetry.NewProbeRecord(p)
		rec.Window = window
		buf, err := EncodeRecord(nil, rec)
		if err != nil {
			return false
		}
		got, n, err := DecodeRecord(buf)
		return err == nil && n == len(buf) && got.Window == window &&
			reflect.DeepEqual(got.Data, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	batch := telemetry.Batch{
		telemetry.NewProbeRecord(&telemetry.PingProbe{Timestamp: 1, RTTMicros: 100}),
		telemetry.NewProbeRecord(&telemetry.PingProbe{Timestamp: 2, RTTMicros: 200}),
		telemetry.NewAggRecord(telemetry.NewAggRow(telemetry.NumKey(4), 1, 9), 10),
	}
	frames := []Frame{
		{StreamID: 2, Source: 17, Records: batch},
		{StreamID: 3, Source: 17, Records: nil},
	}
	for _, f := range frames {
		if err := fw.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(&buf)
	for i, want := range frames {
		got, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.StreamID != want.StreamID || got.Source != want.Source {
			t.Fatalf("frame %d header = %+v", i, got)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("frame %d: %d records, want %d", i, len(got.Records), len(want.Records))
		}
		for j := range want.Records {
			if !reflect.DeepEqual(got.Records[j].Data, want.Records[j].Data) {
				t.Fatalf("frame %d record %d payload mismatch", i, j)
			}
		}
	}
	if _, err := fr.ReadFrame(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestFrameReaderTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(Frame{StreamID: 1, Records: telemetry.Batch{
		telemetry.NewProbeRecord(&telemetry.PingProbe{}),
	}}); err != nil {
		t.Fatal(err)
	}
	fw.Flush()
	data := buf.Bytes()
	fr := NewFrameReader(bytes.NewReader(data[:len(data)-3]))
	if _, err := fr.ReadFrame(); err == nil {
		t.Fatal("expected error on truncated frame body")
	}
}

func TestFrameReaderBadLength(t *testing.T) {
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	fr := NewFrameReader(bytes.NewReader(raw))
	if _, err := fr.ReadFrame(); err == nil {
		t.Fatal("expected error for oversized frame length")
	}
}

func TestFrameTooShortHeader(t *testing.T) {
	// Frame body shorter than 12 bytes must be rejected.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 4, 1, 2, 3, 4})
	fr := NewFrameReader(&buf)
	if _, err := fr.ReadFrame(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("got %v", err)
	}
}

func BenchmarkEncodeProbe(b *testing.B) {
	rec := telemetry.NewProbeRecord(&telemetry.PingProbe{Timestamp: 1, SrcIP: 2, DstIP: 3, RTTMicros: 4})
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = EncodeRecord(buf, rec)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeProbe(b *testing.B) {
	rec := telemetry.NewProbeRecord(&telemetry.PingProbe{Timestamp: 1, SrcIP: 2, DstIP: 3, RTTMicros: 4})
	buf, _ := EncodeRecord(nil, rec)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRecord(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQuantileRowRoundTrip(t *testing.T) {
	q := telemetry.NewQuantileRow(telemetry.StrKey("a|b"), 3, 0, 10000, 50)
	for i := 0; i < 500; i++ {
		q.Observe(float64(i * 25))
	}
	rec := telemetry.Record{Time: 99, Window: 3, WireSize: q.WireSize(), Data: q}
	got := roundTrip(t, rec)
	gq := got.Data.(*telemetry.QuantileRow)
	if gq.Key != q.Key || gq.Total != q.Total || gq.Lo != q.Lo || gq.Hi != q.Hi {
		t.Fatalf("header: %+v vs %+v", gq, q)
	}
	if len(gq.Counts) != len(q.Counts) {
		t.Fatalf("counts len: %d vs %d", len(gq.Counts), len(q.Counts))
	}
	for i := range q.Counts {
		if gq.Counts[i] != q.Counts[i] {
			t.Fatalf("count %d differs", i)
		}
	}
	for _, p := range []float64{0.1, 0.5, 0.99} {
		if gq.Quantile(p) != q.Quantile(p) {
			t.Fatalf("quantile %v differs", p)
		}
	}
}

func TestQuantileRowTruncation(t *testing.T) {
	q := telemetry.NewQuantileRow(telemetry.NumKey(7), 1, 0, 100, 8)
	q.Observe(50)
	full, err := EncodeRecord(nil, telemetry.Record{Data: q})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := DecodeRecord(full[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

// DecodeRecord must never panic on arbitrary bytes (transport safety).
func TestDecodeRecordNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 5000; trial++ {
		n := rng.IntN(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.IntN(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %x: %v", buf, r)
				}
			}()
			_, _, _ = DecodeRecord(buf)
		}()
	}
}

func TestHelloAckTermRoundTrip(t *testing.T) {
	h := &Hello{Source: 3, Seq: 17, Version: WireV2, Term: 5}
	got := roundTrip(t, telemetry.Record{WireSize: 29, Data: h})
	if !reflect.DeepEqual(got.Data, h) {
		t.Fatalf("hello = %+v", got.Data)
	}
	a := &Ack{Source: 3, Seq: 16, Version: WireV2, Term: 6}
	got = roundTrip(t, telemetry.Record{WireSize: 29, Data: a})
	if !reflect.DeepEqual(got.Data, a) {
		t.Fatalf("ack = %+v", got.Data)
	}
}

func TestHelloAckAdmissionExtensionRoundTrip(t *testing.T) {
	h := &Hello{Source: 3, Seq: 17, Version: WireV2, Term: 5, Compress: true, Class: 3, Tenant: "acme"}
	got := roundTrip(t, telemetry.Record{WireSize: 29, Data: h})
	if !reflect.DeepEqual(got.Data, h) {
		t.Fatalf("hello = %+v", got.Data)
	}
	a := &Ack{Source: 3, Seq: 16, Version: WireV2, Term: 6, ThrottleMicros: 750_000, Replay: true}
	got = roundTrip(t, telemetry.Record{WireSize: 29, Data: a})
	if !reflect.DeepEqual(got.Data, a) {
		t.Fatalf("ack = %+v", got.Data)
	}
}

// A pre-admission peer's Hello/Ack simply ends after the Compress byte;
// the extension fields must decode as zero values, not as an error.
func TestHelloAckAdmissionExtensionCompat(t *testing.T) {
	enc, err := EncodeRecord(nil, telemetry.Record{WireSize: 29,
		Data: &Hello{Source: 1, Seq: 2, Version: WireV2, Term: 3, Compress: true}})
	if err != nil {
		t.Fatal(err)
	}
	// Zero Class + empty Tenant encode as exactly two trailing bytes;
	// stripping them reproduces the pre-admission encoding.
	rec, _, err := DecodeRecord(enc[:len(enc)-2])
	if err != nil {
		t.Fatal(err)
	}
	h := rec.Data.(*Hello)
	if h.Class != 0 || h.Tenant != "" || h.Term != 3 || !h.Compress {
		t.Fatalf("legacy hello decoded as %+v", h)
	}

	enc, err = EncodeRecord(nil, telemetry.Record{WireSize: 29,
		Data: &Ack{Source: 1, Seq: 2, Version: WireV2, Term: 3, Compress: true}})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err = DecodeRecord(enc[:len(enc)-2])
	if err != nil {
		t.Fatal(err)
	}
	a := rec.Data.(*Ack)
	if a.ThrottleMicros != 0 || a.Replay || a.Term != 3 || !a.Compress {
		t.Fatalf("legacy ack decoded as %+v", a)
	}
}

func TestReplicationRecordsRoundTrip(t *testing.T) {
	hello := &ReplHello{LastID: 12, LogWM: 9_000_000}
	got := roundTrip(t, telemetry.Record{WireSize: 33, Data: hello})
	if !reflect.DeepEqual(got.Data, hello) {
		t.Fatalf("repl hello = %+v", got.Data)
	}
	snap := &ReplSnapshot{ID: 8, BaseID: 7, Seq: 40, Term: 2, Delta: true, Data: []byte{1, 2, 3, 4}}
	got = roundTrip(t, telemetry.Record{WireSize: 40 + len(snap.Data), Data: snap})
	if !reflect.DeepEqual(got.Data, snap) {
		t.Fatalf("repl snapshot = %+v", got.Data)
	}
	ack := &ReplAck{ID: 8, Seq: 40}
	got = roundTrip(t, telemetry.Record{WireSize: 33, Data: ack})
	if !reflect.DeepEqual(got.Data, ack) {
		t.Fatalf("repl ack = %+v", got.Data)
	}
}
