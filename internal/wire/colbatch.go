package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"jarvis/internal/telemetry"
)

// ColumnarBatch is a decoded v2 frame kept in SoA (structure-of-arrays)
// form: per-field columns backed by the decode arena and the decoder's
// intern table, never materialized into telemetry.Record structs. It is
// what the columnar execution path (operator.ColumnarProcessor,
// SPEngine.IngestColumnar) flows between operator stages.
//
// A batch is an ordered list of sections, one per run of consecutive
// same-type records, so concatenating the sections' rows in order
// reproduces the original record sequence exactly. Section types the SoA
// layer does not model (raw v1 payloads, quantile rows, watermarks) are
// materialized into the section's Rows fallback at decode time; columnar
// operators that meet a section they cannot process the same way
// materialize just that section and keep the rest of the wave SoA.
//
// Mutation discipline: every column slice and pointed-to column struct
// may be shared between several ColumnarBatch values (the engine copies
// section headers, not columns). An operator that wants to change a
// column must allocate a replacement and swap the ColSec field — never
// write through a shared array.
type ColumnarBatch struct {
	Secs []ColSec
}

// ColSec is one section of a columnar batch: a run of same-type records
// as per-field columns. Times and Windows are the record-header columns
// shared by every SoA tag; exactly one of the payload column structs
// (Ping, ToR, Log, Job, Agg) is non-nil for a SoA section, and Rows is
// non-nil instead for a materialized fallback section.
type ColSec struct {
	// Tag is the wire type tag of the section's records (advisory for
	// Rows sections, whose records may be heterogeneous after an
	// operator fallback).
	Tag byte
	// Times and Windows are the record-header columns (event time and
	// assigned tumbling window), one entry per row.
	Times   []int64
	Windows []int64
	// Sel is the selection vector: indices of live rows, ascending. nil
	// means all rows are live. It applies to the columns only — Rows
	// sections are always fully live (filters compact Rows directly).
	Sel []int32

	Ping *PingCols
	ToR  *ToRCols
	Log  *LogCols
	Job  *JobCols
	Agg  *AggCols
	// Rows holds materialized records for section types without SoA
	// columns, and for operator-level per-section fallbacks.
	Rows telemetry.Batch
}

// PingCols are the payload columns of a TagPingProbe section.
type PingCols struct {
	TS                                             []int64 // absolute probe timestamps
	SrcIP, SrcCluster, DstIP, DstCluster, RTT, Err []uint32
}

// ToRCols are the payload columns of a TagToRProbe section.
type ToRCols struct {
	TS                  []int64
	SrcToR, DstToR, RTT []uint32
}

// LogCols are the payload columns of a TagLogLine section. Raw strings
// are interned through the decoder's canonicalization cache.
type LogCols struct {
	TS  []int64
	Raw []string
}

// JobCols are the payload columns of a TagJobStats section. Tenant and
// StatName are interned.
type JobCols struct {
	TS               []int64
	Tenant, StatName []string
	Stat             []float64
	Bucket           []int64
}

// AggCols are the payload columns of a TagAggRow section (partial
// aggregates shipped from upstream GroupAgg replicas). Window is the
// payload's own window field (already resolved against the record
// header's window column).
type AggCols struct {
	KeyNum        []uint64
	KeyStr        []string
	Window        []int64
	Count         []int64
	Sum, Min, Max []float64
}

// Reset empties the batch, keeping the section slice's capacity.
func (cb *ColumnarBatch) Reset() { cb.Secs = cb.Secs[:0] }

// N returns the section's column length (total rows, live or not).
func (s *ColSec) N() int {
	if s.Rows != nil {
		return len(s.Rows)
	}
	return len(s.Times)
}

// Len returns the section's live row count.
func (s *ColSec) Len() int {
	if s.Rows != nil {
		return len(s.Rows)
	}
	if s.Sel != nil {
		return len(s.Sel)
	}
	return len(s.Times)
}

// Records returns the batch's live row count.
func (cb *ColumnarBatch) Records() int {
	n := 0
	for i := range cb.Secs {
		n += cb.Secs[i].Len()
	}
	return n
}

// rowBytes returns the accounting wire size of one live row, matching
// what the row-materializing decoder would stamp into Record.WireSize.
func (s *ColSec) rowBytes(i int) int64 {
	switch {
	case s.Ping != nil:
		return telemetry.PingProbeWireSize
	case s.ToR != nil:
		return telemetry.ToRProbeWireSize
	case s.Log != nil:
		return int64(len(s.Log.Raw[i]))
	case s.Job != nil:
		return int64(len(s.Job.Tenant[i]) + len(s.Job.StatName[i]) + 8 + 8 + 4 + 16)
	case s.Agg != nil:
		keyLen := 8
		if s.Agg.KeyStr[i] != "" {
			keyLen = len(s.Agg.KeyStr[i])
		}
		return int64(keyLen + 8 + 8 + 8 + 8 + 8 + 16)
	default:
		return 0
	}
}

// RowBytes returns the accounting wire size of one row — the WireSize a
// materialized Record for it would carry. Callers pass live indices; the
// selection vector itself is not consulted.
func (s *ColSec) RowBytes(i int) int { return int(s.rowBytes(i)) }

// TotalBytes returns the sum of live rows' accounting wire sizes — the
// columnar equivalent of telemetry.Batch.TotalBytes. Fixed-size payload
// sections (probes) sum in O(1); only variable-size payloads walk rows.
func (cb *ColumnarBatch) TotalBytes() int64 {
	var total int64
	for si := range cb.Secs {
		s := &cb.Secs[si]
		switch {
		case s.Rows != nil:
			total += s.Rows.TotalBytes()
		case s.Ping != nil:
			total += telemetry.PingProbeWireSize * int64(s.Len())
		case s.ToR != nil:
			total += telemetry.ToRProbeWireSize * int64(s.Len())
		case s.Sel != nil:
			for _, i := range s.Sel {
				total += s.rowBytes(int(i))
			}
		default:
			for i := 0; i < len(s.Times); i++ {
				total += s.rowBytes(i)
			}
		}
	}
	return total
}

// AppendRows materializes every live row into records appended to *out,
// in order, allocating fresh per-section arenas — exactly the records the
// row-materializing decoder would have produced (after any filtering and
// window assignment recorded in the section). The appended records own
// their payload memory and may be retained freely.
func (cb *ColumnarBatch) AppendRows(out *telemetry.Batch) {
	for si := range cb.Secs {
		cb.Secs[si].AppendRows(out)
	}
}

// Live invokes fn for every live row index of a columnar section.
func (s *ColSec) Live(fn func(i int)) {
	if s.Sel != nil {
		for _, i := range s.Sel {
			fn(int(i))
		}
		return
	}
	for i := 0; i < len(s.Times); i++ {
		fn(i)
	}
}

// AppendRows materializes one section's live rows into *out.
func (s *ColSec) AppendRows(out *telemetry.Batch) {
	if s.Rows != nil {
		*out = append(*out, s.Rows...)
		return
	}
	switch {
	case s.Ping != nil:
		arena := make([]telemetry.PingProbe, 0, s.Len())
		c := s.Ping
		s.Live(func(i int) {
			arena = append(arena, telemetry.PingProbe{
				Timestamp: c.TS[i], SrcIP: c.SrcIP[i], SrcCluster: c.SrcCluster[i],
				DstIP: c.DstIP[i], DstCluster: c.DstCluster[i],
				RTTMicros: c.RTT[i], ErrCode: c.Err[i],
			})
			*out = append(*out, telemetry.Record{
				Time: s.Times[i], Window: s.Windows[i],
				WireSize: telemetry.PingProbeWireSize, Data: &arena[len(arena)-1],
			})
		})
	case s.ToR != nil:
		arena := make([]telemetry.ToRProbe, 0, s.Len())
		c := s.ToR
		s.Live(func(i int) {
			arena = append(arena, telemetry.ToRProbe{
				Timestamp: c.TS[i], SrcToR: c.SrcToR[i], DstToR: c.DstToR[i], RTTMicros: c.RTT[i],
			})
			*out = append(*out, telemetry.Record{
				Time: s.Times[i], Window: s.Windows[i],
				WireSize: telemetry.ToRProbeWireSize, Data: &arena[len(arena)-1],
			})
		})
	case s.Log != nil:
		arena := make([]telemetry.LogLine, 0, s.Len())
		c := s.Log
		s.Live(func(i int) {
			arena = append(arena, telemetry.LogLine{Timestamp: c.TS[i], Raw: c.Raw[i]})
			*out = append(*out, telemetry.Record{
				Time: s.Times[i], Window: s.Windows[i],
				WireSize: len(c.Raw[i]), Data: &arena[len(arena)-1],
			})
		})
	case s.Job != nil:
		arena := make([]telemetry.JobStats, 0, s.Len())
		c := s.Job
		s.Live(func(i int) {
			arena = append(arena, telemetry.JobStats{
				Timestamp: c.TS[i], Tenant: c.Tenant[i], StatName: c.StatName[i],
				Stat: c.Stat[i], Bucket: int(c.Bucket[i]),
			})
			p := &arena[len(arena)-1]
			*out = append(*out, telemetry.Record{
				Time: s.Times[i], Window: s.Windows[i],
				WireSize: p.JobStatsWireSize(), Data: p,
			})
		})
	case s.Agg != nil:
		arena := make([]telemetry.AggRow, 0, s.Len())
		c := s.Agg
		s.Live(func(i int) {
			arena = append(arena, telemetry.AggRow{
				Key:    telemetry.GroupKey{Num: c.KeyNum[i], Str: c.KeyStr[i]},
				Window: c.Window[i], Count: c.Count[i],
				Sum: c.Sum[i], Min: c.Min[i], Max: c.Max[i],
			})
			p := &arena[len(arena)-1]
			*out = append(*out, telemetry.Record{
				Time: s.Times[i], Window: s.Windows[i],
				WireSize: p.AggRowWireSize(), Data: p,
			})
		})
	}
}

// Clone returns a copy suitable for a second independent execution of
// the batch: section headers are fresh and selections reset, while the
// (immutable under the mutation discipline) columns and strings stay
// shared. Tests and benchmarks use it to re-ingest one decoded frame.
func (cb *ColumnarBatch) Clone() *ColumnarBatch {
	out := &ColumnarBatch{Secs: make([]ColSec, len(cb.Secs))}
	copy(out.Secs, cb.Secs)
	for i := range out.Secs {
		s := &out.Secs[i]
		if s.Sel != nil {
			s.Sel = append([]int32(nil), s.Sel...)
		}
		if s.Rows != nil {
			s.Rows = s.Rows.Clone()
		}
	}
	return out
}

// DecodeColumnar parses one columnar payload (the frame bytes after the
// 12-byte header) into SoA sections appended to cb, without
// materializing telemetry.Record structs for the section types the SoA
// layer models. Column arrays are freshly allocated per call (one arena
// allocation per column, not per record) and own their memory; strings
// go through the decoder's canonicalization cache like the
// row-materializing path.
func (d *ColumnarDecoder) DecodeColumnar(payload []byte, cb *ColumnarBatch) error {
	if len(payload) < 4 {
		return ErrShortBuffer
	}
	tableOff := binary.BigEndian.Uint32(payload)
	if tableOff < 4 || uint64(tableOff) > uint64(len(payload)) {
		return fmt.Errorf("wire: columnar table offset %d outside payload of %d", tableOff, len(payload))
	}
	if err := d.readTable(payload[tableOff:]); err != nil {
		return err
	}
	r := &reader{buf: payload[:tableOff], off: 4}
	for r.off < len(r.buf) {
		if err := d.decodeSectionCols(r, cb); err != nil {
			return err
		}
	}
	return nil
}

// headerCols decodes the shared Times/Windows header columns into
// (pooled when enabled) arenas.
func (d *ColumnarDecoder) headerCols(r *reader, n int) (times, windows []int64) {
	times = d.i64Arena(n)
	windows = d.i64Arena(n)
	r.zigzagDeltas(times)
	r.zigzagDeltas(windows)
	return times, windows
}

// u32Col decodes one packed big-endian uint32 column into an arena.
func (d *ColumnarDecoder) u32Col(r *reader, n int) []uint32 {
	raw := r.take(4 * n)
	if r.err != nil {
		return nil
	}
	out := d.u32Arena(n)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(raw[4*i:])
	}
	return out
}

// f64Col decodes one packed big-endian float64 column into an arena.
func (d *ColumnarDecoder) f64Col(r *reader, n int) []float64 {
	raw := r.take(8 * n)
	if r.err != nil {
		return nil
	}
	out := d.f64Arena(n)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[8*i:]))
	}
	return out
}

// strCol decodes one string-reference column through the frame table and
// intern cache. The slice comes from the arena pool when enabled; the
// strings themselves are owned by the canonicalization cache.
func (d *ColumnarDecoder) strCol(r *reader, n int) ([]string, error) {
	out := d.strArena(n)
	for i := range out {
		s, err := d.strOrErr(r)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// tsCol decodes the payload-timestamp column (zigzag deltas against the
// record times) into absolute timestamps.
func (d *ColumnarDecoder) tsCol(r *reader, times []int64) []int64 {
	out := d.i64Arena(len(times))
	r.zigzags(out)
	if r.err != nil {
		return nil
	}
	for i := range out {
		out[i] += times[i]
	}
	return out
}

func (d *ColumnarDecoder) decodeSectionCols(r *reader, cb *ColumnarBatch) error {
	tag, n, err := d.sectionHeader(r)
	if err != nil {
		return err
	}
	sec := ColSec{Tag: tag}
	switch tag {
	case TagPingProbe:
		sec.Times, sec.Windows = d.headerCols(r, n)
		c := &PingCols{TS: d.tsCol(r, sec.Times)}
		c.SrcIP = d.u32Col(r, n)
		c.SrcCluster = d.u32Col(r, n)
		c.DstIP = d.u32Col(r, n)
		c.DstCluster = d.u32Col(r, n)
		c.RTT = d.u32Col(r, n)
		c.Err = d.u32Col(r, n)
		sec.Ping = c
	case TagToRProbe:
		sec.Times, sec.Windows = d.headerCols(r, n)
		c := &ToRCols{TS: d.tsCol(r, sec.Times)}
		c.SrcToR = d.u32Col(r, n)
		c.DstToR = d.u32Col(r, n)
		c.RTT = d.u32Col(r, n)
		sec.ToR = c
	case TagLogLine:
		sec.Times, sec.Windows = d.headerCols(r, n)
		c := &LogCols{TS: d.tsCol(r, sec.Times)}
		raw, err := d.strCol(r, n)
		if err != nil {
			return err
		}
		c.Raw = raw
		sec.Log = c
	case TagJobStats:
		sec.Times, sec.Windows = d.headerCols(r, n)
		c := &JobCols{TS: d.tsCol(r, sec.Times)}
		var err error
		if c.Tenant, err = d.strCol(r, n); err != nil {
			return err
		}
		if c.StatName, err = d.strCol(r, n); err != nil {
			return err
		}
		c.Stat = d.f64Col(r, n)
		c.Bucket = d.i64Arena(n)
		r.zigzags(c.Bucket)
		sec.Job = c
	case TagAggRow:
		sec.Times, sec.Windows = d.headerCols(r, n)
		c := &AggCols{}
		raw := r.take(8 * n)
		if r.err == nil {
			c.KeyNum = d.u64Arena(n)
			for i := range c.KeyNum {
				c.KeyNum[i] = binary.BigEndian.Uint64(raw[8*i:])
			}
		}
		var err error
		if c.KeyStr, err = d.strCol(r, n); err != nil {
			return err
		}
		c.Window = d.i64Arena(n)
		r.zigzags(c.Window)
		if r.err == nil {
			for i := range c.Window {
				c.Window[i] += sec.Windows[i]
			}
		}
		c.Count = d.i64Arena(n)
		r.uvarints(c.Count)
		c.Sum = d.f64Col(r, n)
		c.Min = d.f64Col(r, n)
		c.Max = d.f64Col(r, n)
		sec.Agg = c
	default:
		// Raw, quantile and watermark sections have no SoA columns —
		// materialize them through the shared section parser.
		var rows telemetry.Batch
		if err := d.decodeSectionBody(r, tag, n, &rows); err != nil {
			return err
		}
		sec.Rows = rows
	}
	if r.err != nil {
		return r.err
	}
	cb.Secs = append(cb.Secs, sec)
	return nil
}
