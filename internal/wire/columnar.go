package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"jarvis/internal/telemetry"
)

// Wire format v2: columnar batch frames.
//
// A v1 frame serializes its batch record by record, so the decode side
// pays one struct allocation (plus string allocations) per record. A v2
// frame stores the same batch column-wise: records are grouped into
// *sections* of consecutive same-type records, and each section holds
// per-field contiguous arrays — event times and windows as zigzag-delta
// varints, fixed-width numeric fields as packed big-endian arrays, and
// strings as references into a per-frame string table. The decoder
// materializes a whole section into one arena slice, so decoding a
// frame costs O(sections) allocations instead of O(records).
//
// Layout (the frame header's record-count field holds ColumnarMarker):
//
//	[4B tableOff] [section ...] [string table]
//	section: 1B tag, uvarint n, per-field columns (tag-specific)
//	table:   uvarint count, count × (uvarint len, bytes)
//
// The string table sits at the end (tableOff points at it, relative to
// the payload start) so the encoder can emit sections in one pass and
// patch the offset, copy-free. String references are uvarints where 0
// means the empty string and k > 0 means table entry k-1. Each frame is
// self-contained — the table resets per frame — which keeps replayed
// epochs byte-stable across reconnects and SP restarts; cross-frame
// sharing happens on the decode side, where a per-connection (or
// per-store) canonicalization cache makes repeated group keys, tenants
// and stat names decode to one shared string handle instead of a fresh
// allocation per frame.
//
// Sections cover the telemetry payload types and watermarks; any other
// payload falls back to a raw section (tag 0) of per-record v1
// encodings, so v2 frames can carry everything v1 frames can.

// ColumnarMarker is the frame record-count sentinel announcing a v2
// columnar payload. v1 readers reject it (the implied record count can
// never fit a frame), so a columnar frame fails fast instead of being
// misparsed by a peer that only speaks v1.
const ColumnarMarker = ^uint32(0)

// ColumnarFlateMarker is the frame record-count sentinel announcing a
// flate-compressed v2 columnar payload: a uvarint raw payload length
// followed by the flate stream of the exact bytes an uncompressed
// columnar frame would carry after its marker. Like ColumnarMarker, v1
// readers reject it fast, and v2 readers without compression never see
// it because compression is negotiated through the Hello/Ack handshake.
const ColumnarFlateMarker = ^uint32(0) - 2

// Wire protocol versions negotiated by the Hello/Ack handshake.
const (
	WireV1 = 1 // record-at-a-time frames
	WireV2 = 2 // columnar batch frames

	// CurrentWireVersion is the newest version this build speaks.
	CurrentWireVersion = WireV2
)

// tagRawSection opens a fallback section of per-record v1 encodings.
const tagRawSection byte = 0x00

// maxCanonStrings bounds the decode-side canonicalization cache; when a
// pathological stream floods it with unique strings it resets rather
// than growing without bound.
const maxCanonStrings = 1 << 16

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// columnarEncoder builds v2 payloads. It is owned by a FrameWriter; the
// string index map and table are reused (and reset) across frames.
type columnarEncoder struct {
	idx  map[string]uint32
	tab  []string
	live []int32 // scratch live-index vector for column-direct encoding
}

// ref returns the string-table reference for s, interning it on first
// use within the current frame. 0 encodes the empty string.
func (e *columnarEncoder) ref(s string) uint64 {
	if s == "" {
		return 0
	}
	if id, ok := e.idx[s]; ok {
		return uint64(id) + 1
	}
	e.tab = append(e.tab, s)
	id := uint32(len(e.tab))
	e.idx[s] = id - 1
	return uint64(id)
}

// sectionTag classifies a record for section grouping: a wire type tag
// for the columnar-encodable payloads, tagRawSection for everything
// else.
func sectionTag(rec *telemetry.Record) byte {
	switch rec.Data.(type) {
	case *telemetry.PingProbe:
		return TagPingProbe
	case *telemetry.ToRProbe:
		return TagToRProbe
	case *telemetry.LogLine:
		return TagLogLine
	case *telemetry.JobStats:
		return TagJobStats
	case *telemetry.AggRow:
		return TagAggRow
	case *telemetry.QuantileRow:
		return TagQuantileRow
	case *Watermark:
		return TagWatermark
	default:
		return tagRawSection
	}
}

// encode appends the columnar payload for batch to dst.
func (e *columnarEncoder) encode(dst []byte, batch telemetry.Batch) ([]byte, error) {
	if e.idx == nil {
		e.idx = make(map[string]uint32)
	} else {
		clear(e.idx)
	}
	e.tab = e.tab[:0]

	base := len(dst)
	dst = append(dst, 0, 0, 0, 0) // tableOff, patched below

	var err error
	for lo := 0; lo < len(batch); {
		tag := sectionTag(&batch[lo])
		hi := lo + 1
		for hi < len(batch) && sectionTag(&batch[hi]) == tag {
			hi++
		}
		dst, err = e.encodeSection(dst, tag, batch[lo:hi])
		if err != nil {
			return nil, err
		}
		lo = hi
	}

	binary.BigEndian.PutUint32(dst[base:], uint32(len(dst)-base))
	dst = binary.AppendUvarint(dst, uint64(len(e.tab)))
	for _, s := range e.tab {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst, nil
}

// appendTimeCols writes the shared Record header columns: event times
// and window ids, both zigzag-delta packed (the first value absolute).
func appendTimeCols(dst []byte, sec telemetry.Batch) []byte {
	prev := int64(0)
	for i := range sec {
		dst = binary.AppendUvarint(dst, zigzag(sec[i].Time-prev))
		prev = sec[i].Time
	}
	prev = 0
	for i := range sec {
		dst = binary.AppendUvarint(dst, zigzag(sec[i].Window-prev))
		prev = sec[i].Window
	}
	return dst
}

func (e *columnarEncoder) encodeSection(dst []byte, tag byte, sec telemetry.Batch) ([]byte, error) {
	dst = append(dst, tag)
	dst = binary.AppendUvarint(dst, uint64(len(sec)))
	if tag == tagRawSection {
		var err error
		for i := range sec {
			dst, err = EncodeRecord(dst, sec[i])
			if err != nil {
				return nil, err
			}
		}
		return dst, nil
	}
	dst = appendTimeCols(dst, sec)
	switch tag {
	case TagPingProbe:
		for i := range sec {
			p := sec[i].Data.(*telemetry.PingProbe)
			dst = binary.AppendUvarint(dst, zigzag(p.Timestamp-sec[i].Time))
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint32(dst, sec[i].Data.(*telemetry.PingProbe).SrcIP)
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint32(dst, sec[i].Data.(*telemetry.PingProbe).SrcCluster)
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint32(dst, sec[i].Data.(*telemetry.PingProbe).DstIP)
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint32(dst, sec[i].Data.(*telemetry.PingProbe).DstCluster)
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint32(dst, sec[i].Data.(*telemetry.PingProbe).RTTMicros)
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint32(dst, sec[i].Data.(*telemetry.PingProbe).ErrCode)
		}
	case TagToRProbe:
		for i := range sec {
			p := sec[i].Data.(*telemetry.ToRProbe)
			dst = binary.AppendUvarint(dst, zigzag(p.Timestamp-sec[i].Time))
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint32(dst, sec[i].Data.(*telemetry.ToRProbe).SrcToR)
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint32(dst, sec[i].Data.(*telemetry.ToRProbe).DstToR)
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint32(dst, sec[i].Data.(*telemetry.ToRProbe).RTTMicros)
		}
	case TagLogLine:
		for i := range sec {
			p := sec[i].Data.(*telemetry.LogLine)
			dst = binary.AppendUvarint(dst, zigzag(p.Timestamp-sec[i].Time))
		}
		for i := range sec {
			dst = binary.AppendUvarint(dst, e.ref(sec[i].Data.(*telemetry.LogLine).Raw))
		}
	case TagJobStats:
		for i := range sec {
			p := sec[i].Data.(*telemetry.JobStats)
			dst = binary.AppendUvarint(dst, zigzag(p.Timestamp-sec[i].Time))
		}
		for i := range sec {
			dst = binary.AppendUvarint(dst, e.ref(sec[i].Data.(*telemetry.JobStats).Tenant))
		}
		for i := range sec {
			dst = binary.AppendUvarint(dst, e.ref(sec[i].Data.(*telemetry.JobStats).StatName))
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(sec[i].Data.(*telemetry.JobStats).Stat))
		}
		for i := range sec {
			dst = binary.AppendUvarint(dst, zigzag(int64(sec[i].Data.(*telemetry.JobStats).Bucket)))
		}
	case TagAggRow:
		for i := range sec {
			dst = binary.BigEndian.AppendUint64(dst, sec[i].Data.(*telemetry.AggRow).Key.Num)
		}
		for i := range sec {
			dst = binary.AppendUvarint(dst, e.ref(sec[i].Data.(*telemetry.AggRow).Key.Str))
		}
		for i := range sec {
			p := sec[i].Data.(*telemetry.AggRow)
			dst = binary.AppendUvarint(dst, zigzag(p.Window-sec[i].Window))
		}
		for i := range sec {
			dst = binary.AppendUvarint(dst, uint64(sec[i].Data.(*telemetry.AggRow).Count))
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(sec[i].Data.(*telemetry.AggRow).Sum))
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(sec[i].Data.(*telemetry.AggRow).Min))
		}
		for i := range sec {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(sec[i].Data.(*telemetry.AggRow).Max))
		}
	case TagQuantileRow:
		for i := range sec {
			dst = binary.BigEndian.AppendUint64(dst, sec[i].Data.(*telemetry.QuantileRow).Key.Num)
		}
		for i := range sec {
			dst = binary.AppendUvarint(dst, e.ref(sec[i].Data.(*telemetry.QuantileRow).Key.Str))
		}
		for i := range sec {
			p := sec[i].Data.(*telemetry.QuantileRow)
			dst = binary.AppendUvarint(dst, zigzag(p.Window-sec[i].Window))
		}
		for i := range sec {
			p := sec[i].Data.(*telemetry.QuantileRow)
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.Lo))
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.Hi))
			dst = binary.AppendUvarint(dst, uint64(p.Total))
		}
		for i := range sec {
			dst = binary.AppendUvarint(dst, uint64(len(sec[i].Data.(*telemetry.QuantileRow).Counts)))
		}
		for i := range sec {
			for _, c := range sec[i].Data.(*telemetry.QuantileRow).Counts {
				dst = binary.AppendUvarint(dst, uint64(c))
			}
		}
	case TagWatermark:
		for i := range sec {
			p := sec[i].Data.(*Watermark)
			dst = binary.AppendUvarint(dst, zigzag(p.Time-sec[i].Time))
		}
	default:
		return nil, fmt.Errorf("wire: columnar section for unhandled tag 0x%02x", tag)
	}
	return dst, nil
}

// encodeCols appends the columnar payload for a SoA batch to dst,
// straight from the columns — the column-direct equivalent of encode.
// Each SoA section is written as one wire section of its live rows (the
// selection vector is applied and discarded); Rows fallback sections are
// encoded through the row path, grouped into runs exactly like encode.
// Decoding the result reproduces AppendRows' record sequence.
func (e *columnarEncoder) encodeCols(dst []byte, cb *ColumnarBatch) ([]byte, error) {
	if e.idx == nil {
		e.idx = make(map[string]uint32)
	} else {
		clear(e.idx)
	}
	e.tab = e.tab[:0]

	base := len(dst)
	dst = append(dst, 0, 0, 0, 0) // tableOff, patched below

	var err error
	for si := range cb.Secs {
		s := &cb.Secs[si]
		if s.Rows != nil {
			for lo := 0; lo < len(s.Rows); {
				tag := sectionTag(&s.Rows[lo])
				hi := lo + 1
				for hi < len(s.Rows) && sectionTag(&s.Rows[hi]) == tag {
					hi++
				}
				dst, err = e.encodeSection(dst, tag, s.Rows[lo:hi])
				if err != nil {
					return nil, err
				}
				lo = hi
			}
			continue
		}
		if s.Len() == 0 {
			continue
		}
		dst, err = e.encodeColSec(dst, s)
		if err != nil {
			return nil, err
		}
	}

	binary.BigEndian.PutUint32(dst[base:], uint32(len(dst)-base))
	dst = binary.AppendUvarint(dst, uint64(len(e.tab)))
	for _, s := range e.tab {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst, nil
}

// liveIdx returns the section's live row indices, using the selection
// vector directly when present and a reusable identity vector otherwise.
func (e *columnarEncoder) liveIdx(s *ColSec) []int32 {
	if s.Sel != nil {
		return s.Sel
	}
	n := len(s.Times)
	if cap(e.live) < n {
		e.live = make([]int32, n)
		for i := range e.live {
			e.live[i] = int32(i)
		}
	} else if len(e.live) < n {
		for i := len(e.live); i < n; i++ {
			e.live = append(e.live, int32(i))
		}
	}
	return e.live[:n]
}

// encodeColSec writes one SoA section's live rows as a wire section,
// byte-identical to encodeSection over the materialized rows.
func (e *columnarEncoder) encodeColSec(dst []byte, s *ColSec) ([]byte, error) {
	live := e.liveIdx(s)
	switch {
	case s.Ping != nil:
		dst = append(dst, TagPingProbe)
	case s.ToR != nil:
		dst = append(dst, TagToRProbe)
	case s.Log != nil:
		dst = append(dst, TagLogLine)
	case s.Job != nil:
		dst = append(dst, TagJobStats)
	case s.Agg != nil:
		dst = append(dst, TagAggRow)
	default:
		return nil, fmt.Errorf("wire: columnar section 0x%02x has no columns", s.Tag)
	}
	dst = binary.AppendUvarint(dst, uint64(len(live)))
	prev := int64(0)
	for _, i := range live {
		dst = binary.AppendUvarint(dst, zigzag(s.Times[i]-prev))
		prev = s.Times[i]
	}
	prev = 0
	for _, i := range live {
		dst = binary.AppendUvarint(dst, zigzag(s.Windows[i]-prev))
		prev = s.Windows[i]
	}
	switch {
	case s.Ping != nil:
		c := s.Ping
		for _, i := range live {
			dst = binary.AppendUvarint(dst, zigzag(c.TS[i]-s.Times[i]))
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint32(dst, c.SrcIP[i])
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint32(dst, c.SrcCluster[i])
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint32(dst, c.DstIP[i])
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint32(dst, c.DstCluster[i])
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint32(dst, c.RTT[i])
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint32(dst, c.Err[i])
		}
	case s.ToR != nil:
		c := s.ToR
		for _, i := range live {
			dst = binary.AppendUvarint(dst, zigzag(c.TS[i]-s.Times[i]))
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint32(dst, c.SrcToR[i])
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint32(dst, c.DstToR[i])
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint32(dst, c.RTT[i])
		}
	case s.Log != nil:
		c := s.Log
		for _, i := range live {
			dst = binary.AppendUvarint(dst, zigzag(c.TS[i]-s.Times[i]))
		}
		for _, i := range live {
			dst = binary.AppendUvarint(dst, e.ref(c.Raw[i]))
		}
	case s.Job != nil:
		c := s.Job
		for _, i := range live {
			dst = binary.AppendUvarint(dst, zigzag(c.TS[i]-s.Times[i]))
		}
		for _, i := range live {
			dst = binary.AppendUvarint(dst, e.ref(c.Tenant[i]))
		}
		for _, i := range live {
			dst = binary.AppendUvarint(dst, e.ref(c.StatName[i]))
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(c.Stat[i]))
		}
		for _, i := range live {
			dst = binary.AppendUvarint(dst, zigzag(c.Bucket[i]))
		}
	case s.Agg != nil:
		c := s.Agg
		for _, i := range live {
			dst = binary.BigEndian.AppendUint64(dst, c.KeyNum[i])
		}
		for _, i := range live {
			dst = binary.AppendUvarint(dst, e.ref(c.KeyStr[i]))
		}
		for _, i := range live {
			dst = binary.AppendUvarint(dst, zigzag(c.Window[i]-s.Windows[i]))
		}
		for _, i := range live {
			dst = binary.AppendUvarint(dst, uint64(c.Count[i]))
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(c.Sum[i]))
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(c.Min[i]))
		}
		for _, i := range live {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(c.Max[i]))
		}
	}
	return dst, nil
}

// ColumnarDecoder materializes v2 columnar payloads. One decoder serves
// one connection (or one snapshot store): its canonicalization cache
// makes strings that repeat across frames — group keys, tenants, stat
// names, log templates — decode to a single shared string instead of a
// fresh allocation per frame. Each DecodeBatch call materializes records
// into freshly allocated per-section arenas, so decoded records own
// their memory and may be retained freely; the per-record allocation of
// the v1 decoder is gone.
type ColumnarDecoder struct {
	canon map[string]string
	strs  []string // current frame's resolved string table (reused)
	// scratch columns reused across sections (values are copied into
	// records/arenas before the next section touches them).
	times   []int64
	windows []int64
	aux     []int64
	// pool holds free column arenas when pooling is enabled (nil
	// otherwise); lent tracks the arenas handed out since the last
	// recycle so RecycleArenas can return them to the free lists.
	pool *arenaPool
	lent arenaPool
}

// NewColumnarDecoder creates a decoder with an empty canonicalization
// cache.
func NewColumnarDecoder() *ColumnarDecoder {
	return &ColumnarDecoder{canon: make(map[string]string)}
}

// arenaPool is a set of per-element-type free lists of column arenas.
type arenaPool struct {
	i64 [][]int64
	u32 [][]uint32
	u64 [][]uint64
	f64 [][]float64
	str [][]string
}

// EnableArenaPooling switches the decoder to pooled column arenas: SoA
// decode (DecodeColumnar) serves column arrays from per-type free lists
// instead of fresh allocations, and the caller returns them with
// RecycleArenas once the decoded batches of an epoch have been fully
// consumed. With pooling enabled, decoded columns are only valid until
// the recycle call — the receiver recycles at epoch commit, after the
// engine has copied every surviving row out of the wave. Pooling is off
// by default, in which case decoded columns own their memory forever.
func (d *ColumnarDecoder) EnableArenaPooling() {
	if d.pool == nil {
		d.pool = &arenaPool{}
	}
}

// RecycleArenas returns every column arena handed out since the last
// call to the free lists. It must only be called when no decoded
// ColumnarBatch from this decoder is referenced anymore. A no-op when
// pooling is disabled.
func (d *ColumnarDecoder) RecycleArenas() {
	if d.pool == nil {
		return
	}
	d.pool.i64 = append(d.pool.i64, d.lent.i64...)
	d.pool.u32 = append(d.pool.u32, d.lent.u32...)
	d.pool.u64 = append(d.pool.u64, d.lent.u64...)
	d.pool.f64 = append(d.pool.f64, d.lent.f64...)
	d.pool.str = append(d.pool.str, d.lent.str...)
	d.lent.i64 = d.lent.i64[:0]
	d.lent.u32 = d.lent.u32[:0]
	d.lent.u64 = d.lent.u64[:0]
	d.lent.f64 = d.lent.f64[:0]
	d.lent.str = d.lent.str[:0]
}

// popArena pops the newest free arena with enough capacity, discarding
// an undersized one (arena sizes converge to the section sizes the
// connection actually carries).
func popArena[T any](free *[][]T, n int) ([]T, bool) {
	f := *free
	if len(f) == 0 {
		return nil, false
	}
	s := f[len(f)-1]
	f[len(f)-1] = nil
	*free = f[:len(f)-1]
	if cap(s) < n {
		return nil, false
	}
	return s[:n], true
}

func (d *ColumnarDecoder) i64Arena(n int) []int64 {
	if d.pool != nil {
		s, ok := popArena(&d.pool.i64, n)
		if !ok {
			s = make([]int64, n)
		}
		d.lent.i64 = append(d.lent.i64, s)
		return s
	}
	return make([]int64, n)
}

func (d *ColumnarDecoder) u32Arena(n int) []uint32 {
	if d.pool != nil {
		s, ok := popArena(&d.pool.u32, n)
		if !ok {
			s = make([]uint32, n)
		}
		d.lent.u32 = append(d.lent.u32, s)
		return s
	}
	return make([]uint32, n)
}

func (d *ColumnarDecoder) u64Arena(n int) []uint64 {
	if d.pool != nil {
		s, ok := popArena(&d.pool.u64, n)
		if !ok {
			s = make([]uint64, n)
		}
		d.lent.u64 = append(d.lent.u64, s)
		return s
	}
	return make([]uint64, n)
}

func (d *ColumnarDecoder) f64Arena(n int) []float64 {
	if d.pool != nil {
		s, ok := popArena(&d.pool.f64, n)
		if !ok {
			s = make([]float64, n)
		}
		d.lent.f64 = append(d.lent.f64, s)
		return s
	}
	return make([]float64, n)
}

func (d *ColumnarDecoder) strArena(n int) []string {
	if d.pool != nil {
		s, ok := popArena(&d.pool.str, n)
		if !ok {
			s = make([]string, n)
		}
		d.lent.str = append(d.lent.str, s)
		return s
	}
	return make([]string, n)
}

// intern canonicalizes one decoded string through the cross-frame cache.
func (d *ColumnarDecoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.canon[string(b)]; ok { // alloc-free map probe
		return s
	}
	if len(d.canon) >= maxCanonStrings {
		clear(d.canon)
	}
	s := string(b)
	d.canon[s] = s
	return s
}

// str resolves one string reference against the current frame's table.
func (d *ColumnarDecoder) str(ref uint64) (string, error) {
	if ref == 0 {
		return "", nil
	}
	if ref > uint64(len(d.strs)) {
		return "", fmt.Errorf("wire: string ref %d exceeds table of %d", ref, len(d.strs))
	}
	return d.strs[ref-1], nil
}

// DecodeBatch parses one columnar payload (the frame bytes after the
// 12-byte header) and appends the materialized records to *out.
func (d *ColumnarDecoder) DecodeBatch(payload []byte, out *telemetry.Batch) error {
	if len(payload) < 4 {
		return ErrShortBuffer
	}
	tableOff := binary.BigEndian.Uint32(payload)
	if tableOff < 4 || uint64(tableOff) > uint64(len(payload)) {
		return fmt.Errorf("wire: columnar table offset %d outside payload of %d", tableOff, len(payload))
	}
	if err := d.readTable(payload[tableOff:]); err != nil {
		return err
	}
	r := &reader{buf: payload[:tableOff], off: 4}
	for r.off < len(r.buf) {
		if err := d.decodeSection(r, out); err != nil {
			return err
		}
	}
	return nil
}

// readTable resolves the frame's string table through the canon cache.
func (d *ColumnarDecoder) readTable(buf []byte) error {
	r := &reader{buf: buf}
	n := r.uvarint()
	if r.err != nil {
		return r.err
	}
	if n > uint64(len(buf)) { // every entry takes ≥ 1 byte
		return fmt.Errorf("wire: string table of %d entries in %d bytes", n, len(buf))
	}
	d.strs = d.strs[:0]
	for i := uint64(0); i < n; i++ {
		b := r.rawBytes()
		if r.err != nil {
			return r.err
		}
		d.strs = append(d.strs, d.intern(b))
	}
	return nil
}

// minRecordBytes is the smallest possible encoding of one record in a
// section of the given tag, used to reject corrupt counts before sizing
// arenas from attacker-controlled input.
func minRecordBytes(tag byte) int {
	switch tag {
	case TagPingProbe:
		return 3 + 24
	case TagToRProbe:
		return 3 + 12
	case TagLogLine:
		return 4
	case TagJobStats:
		// time + window + ts-delta + tenant ref + stat-name ref +
		// stat (8 B) + bucket, all varints at their 1-byte minimum.
		return 5 + 8 + 1
	case TagAggRow:
		return 2 + 8 + 1 + 1 + 1 + 24
	case TagQuantileRow:
		return 2 + 8 + 1 + 1 + 16 + 1 + 1
	case TagWatermark:
		return 3
	default:
		return 17 // raw v1 record: tag + 16-byte header
	}
}

// nextUvarint reads one uvarint from buf at off with a single-byte fast
// path (the dominant case for delta-packed columns), returning the value
// and the new offset, or newOff < 0 on underflow/overflow.
func nextUvarint(buf []byte, off int) (uint64, int) {
	if off < len(buf) {
		if b := buf[off]; b < 0x80 {
			return uint64(b), off + 1
		}
	}
	v, k := binary.Uvarint(buf[off:])
	if k <= 0 {
		return 0, -1
	}
	return v, off + k
}

// zigzagDeltas bulk-decodes n zigzag-delta varints (running sum) into
// out, a single pass over the buffer with one bounds state.
func (r *reader) zigzagDeltas(out []int64) {
	if r.err != nil {
		return
	}
	buf, off := r.buf, r.off
	prev := int64(0)
	for i := range out {
		v, next := nextUvarint(buf, off)
		if next < 0 {
			r.err = ErrShortBuffer
			return
		}
		off = next
		prev += unzigzag(v)
		out[i] = prev
	}
	r.off = off
}

// zigzags bulk-decodes n independent zigzag varints into out.
func (r *reader) zigzags(out []int64) {
	if r.err != nil {
		return
	}
	buf, off := r.buf, r.off
	for i := range out {
		v, next := nextUvarint(buf, off)
		if next < 0 {
			r.err = ErrShortBuffer
			return
		}
		off = next
		out[i] = unzigzag(v)
	}
	r.off = off
}

// uvarints bulk-decodes n uvarints into out (as int64).
func (r *reader) uvarints(out []int64) {
	if r.err != nil {
		return
	}
	buf, off := r.buf, r.off
	for i := range out {
		v, next := nextUvarint(buf, off)
		if next < 0 {
			r.err = ErrShortBuffer
			return
		}
		off = next
		out[i] = int64(v)
	}
	r.off = off
}

// take returns the next n bytes as a view and advances, or nil on
// underflow.
func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.err = ErrShortBuffer
		return nil
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

// grow returns s resized to n, reusing capacity.
func grow(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// timeCols reads the shared header columns into the decoder's reusable
// times/windows scratch.
func (d *ColumnarDecoder) timeCols(r *reader, n int) {
	d.times = grow(d.times, n)
	d.windows = grow(d.windows, n)
	r.zigzagDeltas(d.times)
	r.zigzagDeltas(d.windows)
}

// sectionHeader reads one section's tag and record count, validating the
// count against the bytes that remain (shared by the row-materializing
// and SoA decoders).
func (d *ColumnarDecoder) sectionHeader(r *reader) (tag byte, n int, err error) {
	tag = r.u8()
	cnt := r.uvarint()
	if r.err != nil {
		return 0, 0, r.err
	}
	if cnt > uint64(len(r.buf)-r.off)/uint64(minRecordBytes(tag)) {
		return 0, 0, fmt.Errorf("wire: section 0x%02x count %d exceeds remaining %d bytes", tag, cnt, len(r.buf)-r.off)
	}
	return tag, int(cnt), nil
}

func (d *ColumnarDecoder) decodeSection(r *reader, out *telemetry.Batch) error {
	tag, n, err := d.sectionHeader(r)
	if err != nil {
		return err
	}
	return d.decodeSectionBody(r, tag, n, out)
}

// decodeSectionBody materializes one section (header already consumed)
// into records appended to *out.
func (d *ColumnarDecoder) decodeSectionBody(r *reader, tag byte, n int, out *telemetry.Batch) error {
	if tag == tagRawSection {
		for i := 0; i < n; i++ {
			rec, k, err := DecodeRecord(r.buf[r.off:])
			if err != nil {
				return err
			}
			r.off += k
			*out = append(*out, rec)
		}
		return nil
	}
	d.timeCols(r, n)
	if r.err != nil {
		return r.err
	}
	times, windows := d.times, d.windows
	*out = slices.Grow(*out, n)
	switch tag {
	case TagPingProbe:
		arena := make([]telemetry.PingProbe, n)
		d.aux = grow(d.aux, n)
		r.zigzags(d.aux)
		srcIP := r.take(4 * n)
		srcCl := r.take(4 * n)
		dstIP := r.take(4 * n)
		dstCl := r.take(4 * n)
		rtt := r.take(4 * n)
		errc := r.take(4 * n)
		if r.err != nil {
			return r.err
		}
		// One pass: the arena line is written exactly once while the six
		// input columns stream sequentially.
		recs := (*out)[len(*out) : len(*out)+n]
		for i := range arena {
			p := &arena[i]
			p.Timestamp = times[i] + d.aux[i]
			p.SrcIP = binary.BigEndian.Uint32(srcIP[4*i:])
			p.SrcCluster = binary.BigEndian.Uint32(srcCl[4*i:])
			p.DstIP = binary.BigEndian.Uint32(dstIP[4*i:])
			p.DstCluster = binary.BigEndian.Uint32(dstCl[4*i:])
			p.RTTMicros = binary.BigEndian.Uint32(rtt[4*i:])
			p.ErrCode = binary.BigEndian.Uint32(errc[4*i:])
			recs[i] = telemetry.Record{
				Time: times[i], Window: windows[i],
				WireSize: telemetry.PingProbeWireSize, Data: p,
			}
		}
		*out = (*out)[:len(*out)+n]
	case TagToRProbe:
		arena := make([]telemetry.ToRProbe, n)
		d.aux = grow(d.aux, n)
		r.zigzags(d.aux)
		srcToR := r.take(4 * n)
		dstToR := r.take(4 * n)
		rtt := r.take(4 * n)
		if r.err != nil {
			return r.err
		}
		recs := (*out)[len(*out) : len(*out)+n]
		for i := range arena {
			p := &arena[i]
			p.Timestamp = times[i] + d.aux[i]
			p.SrcToR = binary.BigEndian.Uint32(srcToR[4*i:])
			p.DstToR = binary.BigEndian.Uint32(dstToR[4*i:])
			p.RTTMicros = binary.BigEndian.Uint32(rtt[4*i:])
			recs[i] = telemetry.Record{
				Time: times[i], Window: windows[i],
				WireSize: telemetry.ToRProbeWireSize, Data: p,
			}
		}
		*out = (*out)[:len(*out)+n]
	case TagLogLine:
		arena := make([]telemetry.LogLine, n)
		d.aux = grow(d.aux, n)
		r.zigzags(d.aux)
		for i := range arena {
			arena[i].Timestamp = times[i] + d.aux[i]
		}
		for i := range arena {
			s, err := d.strOrErr(r)
			if err != nil {
				return err
			}
			arena[i].Raw = s
		}
		for i := range arena {
			*out = append(*out, telemetry.Record{
				Time: times[i], Window: windows[i],
				WireSize: len(arena[i].Raw), Data: &arena[i],
			})
		}
	case TagJobStats:
		arena := make([]telemetry.JobStats, n)
		d.aux = grow(d.aux, n)
		r.zigzags(d.aux)
		for i := range arena {
			arena[i].Timestamp = times[i] + d.aux[i]
		}
		for i := range arena {
			s, err := d.strOrErr(r)
			if err != nil {
				return err
			}
			arena[i].Tenant = s
		}
		for i := range arena {
			s, err := d.strOrErr(r)
			if err != nil {
				return err
			}
			arena[i].StatName = s
		}
		col := r.take(8 * n)
		if r.err == nil {
			for i := range arena {
				arena[i].Stat = math.Float64frombits(binary.BigEndian.Uint64(col[8*i:]))
			}
		}
		r.zigzags(d.aux)
		if r.err != nil {
			return r.err
		}
		for i := range arena {
			arena[i].Bucket = int(d.aux[i])
			*out = append(*out, telemetry.Record{
				Time: times[i], Window: windows[i],
				WireSize: arena[i].JobStatsWireSize(), Data: &arena[i],
			})
		}
	case TagAggRow:
		arena := make([]telemetry.AggRow, n)
		keyNum := r.take(8 * n)
		if r.err != nil {
			return r.err
		}
		for i := range arena {
			s, err := d.strOrErr(r)
			if err != nil {
				return err
			}
			arena[i].Key.Str = s
		}
		d.aux = grow(d.aux, n)
		r.zigzags(d.aux) // window offset vs record window
		if r.err == nil {
			for i := range arena {
				arena[i].Window = windows[i] + d.aux[i]
			}
		}
		r.uvarints(d.aux) // counts
		sums := r.take(8 * n)
		mins := r.take(8 * n)
		maxs := r.take(8 * n)
		if r.err != nil {
			return r.err
		}
		recs := (*out)[len(*out) : len(*out)+n]
		for i := range arena {
			p := &arena[i]
			p.Key.Num = binary.BigEndian.Uint64(keyNum[8*i:])
			p.Count = d.aux[i]
			p.Sum = math.Float64frombits(binary.BigEndian.Uint64(sums[8*i:]))
			p.Min = math.Float64frombits(binary.BigEndian.Uint64(mins[8*i:]))
			p.Max = math.Float64frombits(binary.BigEndian.Uint64(maxs[8*i:]))
			recs[i] = telemetry.Record{
				Time: times[i], Window: windows[i],
				WireSize: p.AggRowWireSize(), Data: p,
			}
		}
		*out = (*out)[:len(*out)+n]
	case TagQuantileRow:
		arena := make([]telemetry.QuantileRow, n)
		col := r.take(8 * n) // Key.Num
		if r.err == nil {
			for i := range arena {
				arena[i].Key.Num = binary.BigEndian.Uint64(col[8*i:])
			}
		}
		for i := range arena {
			s, err := d.strOrErr(r)
			if err != nil {
				return err
			}
			arena[i].Key.Str = s
		}
		d.aux = grow(d.aux, n)
		r.zigzags(d.aux)
		if r.err == nil {
			for i := range arena {
				arena[i].Window = windows[i] + d.aux[i]
			}
		}
		for i := range arena {
			arena[i].Lo = math.Float64frombits(r.u64())
			arena[i].Hi = math.Float64frombits(r.u64())
			arena[i].Total = int64(r.uvarint())
		}
		r.uvarints(d.aux) // counts lengths
		if r.err != nil {
			return r.err
		}
		total := 0
		for i := range arena {
			l := d.aux[i]
			if l < 0 || l > int64(len(r.buf)-r.off) {
				return fmt.Errorf("wire: quantile counts of %d in %d bytes", l, len(r.buf)-r.off)
			}
			total += int(l)
		}
		if total > len(r.buf)-r.off {
			return fmt.Errorf("wire: %d quantile counts in %d bytes", total, len(r.buf)-r.off)
		}
		counts := make([]int64, total)
		off := 0
		for i := range arena {
			cs := counts[off : off+int(d.aux[i]) : off+int(d.aux[i])]
			off += int(d.aux[i])
			r.uvarints(cs)
			arena[i].Counts = cs
		}
		if r.err != nil {
			return r.err
		}
		for i := range arena {
			*out = append(*out, telemetry.Record{
				Time: times[i], Window: windows[i],
				WireSize: arena[i].WireSize(), Data: &arena[i],
			})
		}
	case TagWatermark:
		arena := make([]Watermark, n)
		d.aux = grow(d.aux, n)
		r.zigzags(d.aux)
		if r.err != nil {
			return r.err
		}
		for i := range arena {
			arena[i].Time = times[i] + d.aux[i]
			*out = append(*out, telemetry.Record{
				Time: times[i], Window: windows[i],
				WireSize: 17, Data: &arena[i],
			})
		}
	default:
		return fmt.Errorf("%w: columnar section 0x%02x", ErrUnknownTag, tag)
	}
	return r.err
}

// strOrErr reads one string reference and resolves it.
func (d *ColumnarDecoder) strOrErr(r *reader) (string, error) {
	ref := r.uvarint()
	if r.err != nil {
		return "", r.err
	}
	return d.str(ref)
}
