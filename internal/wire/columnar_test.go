package wire

import (
	"bytes"
	"testing"
	"unsafe"

	"jarvis/internal/telemetry"
)

// mixedBatch builds a batch covering every columnar section type plus a
// raw-fallback payload, with runs long enough to exercise delta packing.
func mixedBatch() telemetry.Batch {
	var b telemetry.Batch
	for i := 0; i < 100; i++ {
		p := &telemetry.PingProbe{
			Timestamp: int64(1000 + i*26), SrcIP: 0x0A000001, SrcCluster: 0x0A00,
			DstIP: 0x0B000000 + uint32(i), DstCluster: 0x0B00, RTTMicros: 400 + uint32(i%7),
		}
		if i%9 == 0 {
			p.ErrCode = 2
		}
		rec := telemetry.NewProbeRecord(p)
		rec.Window = rec.Time / 10_000_000
		b = append(b, rec)
	}
	for i := 0; i < 40; i++ {
		b = append(b, telemetry.Record{
			Time: int64(2000 + i), Window: 1, WireSize: telemetry.ToRProbeWireSize,
			Data: &telemetry.ToRProbe{Timestamp: int64(2000 + i), SrcToR: uint32(i % 4), DstToR: uint32(i % 5), RTTMicros: 300},
		})
	}
	for i := 0; i < 30; i++ {
		raw := "tenant name=alpha, cpu util=42.0"
		if i%3 == 0 {
			raw = "tenant name=beta, memory util=17.5"
		}
		b = append(b, telemetry.NewLogRecord(int64(3000+i*13), raw))
	}
	tenants := []string{"alpha", "beta", "gamma"}
	stats := []string{"cpu util", "memory util"}
	for i := 0; i < 30; i++ {
		j := &telemetry.JobStats{
			Timestamp: int64(4000 + i), Tenant: tenants[i%3], StatName: stats[i%2],
			Stat: float64(i) * 1.5, Bucket: i%12 - 1,
		}
		b = append(b, telemetry.Record{Time: int64(4000 + i), Window: 2, WireSize: j.JobStatsWireSize(), Data: j})
	}
	for i := 0; i < 50; i++ {
		key := telemetry.NumKey(uint64(i) << 32)
		if i%4 == 0 {
			key = telemetry.StrKey(tenants[i%3] + "|cpu util|3")
		}
		row := telemetry.NewAggRow(key, 3, float64(i))
		row.Observe(float64(i * 2))
		b = append(b, telemetry.NewAggRecord(row, 40_000_000))
	}
	for i := 0; i < 10; i++ {
		q := telemetry.NewQuantileRow(telemetry.NumKey(uint64(i)), 4, 0, 1000, 4+i%3)
		q.Observe(float64(i * 100))
		q.Observe(float64(i * 150))
		b = append(b, telemetry.Record{Time: 50_000_000, Window: 4, WireSize: q.WireSize(), Data: q})
	}
	b = append(b, telemetry.Record{Time: 60_000_000, WireSize: 17, Data: &Watermark{Time: 60_000_000}})
	// Raw fallback: a control record inside a data frame.
	b = append(b, telemetry.Record{Time: 61_000_000, WireSize: 33, Data: &EpochEnd{Seq: 9, Watermark: 60_000_000}})
	return b
}

// canonical renders records as their concatenated v1 encodings, the
// equality notion used across the round-trip tests.
func canonical(t *testing.T, b telemetry.Batch) []byte {
	t.Helper()
	var out []byte
	var err error
	for _, rec := range b {
		out, err = EncodeRecord(out, rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestColumnarRoundTrip(t *testing.T) {
	batch := mixedBatch()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.SetColumnar(true)
	if err := fw.WriteFrame(Frame{StreamID: 3, Source: 7, Records: batch}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	got, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Columnar {
		t.Fatal("frame did not decode as columnar")
	}
	if got.StreamID != 3 || got.Source != 7 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Records) != len(batch) {
		t.Fatalf("decoded %d records, want %d", len(got.Records), len(batch))
	}
	if !bytes.Equal(canonical(t, got.Records), canonical(t, batch)) {
		t.Fatal("columnar round-trip changed record content")
	}
	for i := range got.Records {
		if got.Records[i].WireSize != batch[i].WireSize {
			t.Fatalf("record %d wire size %d, want %d", i, got.Records[i].WireSize, batch[i].WireSize)
		}
	}
}

// TestColumnarInternSharing proves repeated strings across frames on one
// reader decode to a single shared string value.
func TestColumnarInternSharing(t *testing.T) {
	rec := func() telemetry.Record {
		row := telemetry.NewAggRow(telemetry.StrKey("tenant-007|cpu util|3"), 1, 5)
		return telemetry.NewAggRecord(row, 10)
	}
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.SetColumnar(true)
	for i := 0; i < 2; i++ {
		if err := fw.WriteFrame(Frame{StreamID: 1, Records: telemetry.Batch{rec()}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	f1, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	s1 := f1.Records[0].Data.(*telemetry.AggRow).Key.Str
	s2 := f2.Records[0].Data.(*telemetry.AggRow).Key.Str
	if s1 != "tenant-007|cpu util|3" {
		t.Fatalf("decoded key %q", s1)
	}
	// Same backing storage, not merely equal content: the intern cache
	// must hand back the identical string header.
	if len(s1) == 0 || unsafe.StringData(s1) != unsafe.StringData(s2) {
		t.Fatal("repeated key across frames decoded to distinct allocations")
	}
}

// TestColumnarDenseJobStats pins the section count guard against the
// densest legal JobStats encoding: every varint at its 1-byte minimum
// (small time deltas, interned refs). A too-strict minRecordBytes once
// rejected frames the encoder itself produced.
func TestColumnarDenseJobStats(t *testing.T) {
	var batch telemetry.Batch
	for i := 0; i < 200; i++ {
		j := &telemetry.JobStats{Timestamp: int64(i), Tenant: "t", StatName: "s", Stat: 1, Bucket: 0}
		batch = append(batch, telemetry.Record{Time: int64(i), WireSize: j.JobStatsWireSize(), Data: j})
	}
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.SetColumnar(true)
	if err := fw.WriteFrame(Frame{StreamID: 2, Records: batch}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewFrameReader(bytes.NewReader(buf.Bytes())).ReadFrame()
	if err != nil {
		t.Fatalf("dense JobStats frame rejected: %v", err)
	}
	if len(got.Records) != len(batch) {
		t.Fatalf("decoded %d of %d records", len(got.Records), len(batch))
	}
	if !bytes.Equal(canonical(t, got.Records), canonical(t, batch)) {
		t.Fatal("dense JobStats round-trip changed content")
	}
}

func TestColumnarEmptyBatch(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.SetColumnar(true)
	if err := fw.WriteFrame(Frame{StreamID: 5, Records: nil}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewFrameReader(bytes.NewReader(buf.Bytes())).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 0 || got.StreamID != 5 {
		t.Fatalf("empty columnar frame decoded to %+v", got)
	}
	if _, err := NewFrameReader(bytes.NewReader(buf.Bytes())).ReadFrame(); err != nil {
		t.Fatal(err)
	}
}

// TestColumnarControlFramesStayV1 checks that a columnar writer still
// encodes control-stream frames record-at-a-time, so handshakes remain
// readable pre-negotiation.
func TestColumnarControlFramesStayV1(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.SetColumnar(true)
	rec := telemetry.Record{WireSize: 29, Data: &Hello{Source: 1, Seq: 2, Version: WireV2}}
	if err := fw.WriteFrame(Frame{StreamID: ControlStreamID, Records: telemetry.Batch{rec}}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewFrameReader(bytes.NewReader(buf.Bytes())).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got.Columnar {
		t.Fatal("control frame was encoded columnar")
	}
	h, ok := got.Records[0].Data.(*Hello)
	if !ok || h.Version != WireV2 {
		t.Fatalf("hello round-trip: %+v", got.Records[0].Data)
	}
}

// TestLegacyHelloDecodes checks truncated Hello payloads from older
// builds still decode: a pre-versioning 12-byte Hello reads as Version 0
// (= v1 peer), a pre-HA Hello (version but no term) reads as Term 0,
// and a pre-compression Hello reads as Compress false.
func TestLegacyHelloDecodes(t *testing.T) {
	rec := telemetry.Record{WireSize: 29, Data: &Hello{Source: 9, Seq: 4, Version: WireV2, Term: 3, Compress: true, Class: 2, Tenant: "t"}}
	enc, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name        string
		strip       int // trailing 1-byte fields removed
		wantVersion uint32
		wantTerm    uint64
		wantComp    bool
		wantClass   byte
	}{
		// The one-char tenant encodes as 2 bytes (uvarint len + byte),
		// the class as 1; every earlier trailing field is 1 byte here.
		{"current", 0, WireV2, 3, true, 2},
		{"pre-admission", 3, WireV2, 3, true, 0},
		{"pre-compression", 4, WireV2, 3, false, 0},
		{"pre-ha", 5, WireV2, 0, false, 0},
		{"pre-versioning", 6, 0, 0, false, 0},
	} {
		legacy := enc[:len(enc)-tc.strip] // each trailing field is 1 byte here
		got, n, err := DecodeRecord(legacy)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if n != len(legacy) {
			t.Fatalf("%s: consumed %d of %d", tc.name, n, len(legacy))
		}
		h := got.Data.(*Hello)
		if h.Source != 9 || h.Seq != 4 || h.Version != tc.wantVersion || h.Term != tc.wantTerm || h.Compress != tc.wantComp || h.Class != tc.wantClass {
			t.Fatalf("%s: decoded as %+v", tc.name, h)
		}
		wantTenant := "t"
		if tc.strip > 0 {
			wantTenant = ""
		}
		if h.Tenant != wantTenant {
			t.Fatalf("%s: tenant = %q", tc.name, h.Tenant)
		}
	}
}
