package wire

// Control payloads for the fault-tolerance protocol (§IV-E): sequenced
// epoch shipping with SP acknowledgements, connection handshakes, and the
// durable snapshot format of internal/checkpoint. Control records travel
// in frames whose StreamID is ControlStreamID so they never collide with
// operator stage ids; on disk the snapshot codec reuses the same frames.

// ControlStreamID tags frames that carry protocol control records
// (handshakes, acks, epoch commits, snapshot metadata) instead of data
// destined for an operator stage.
const ControlStreamID = ^uint32(0) - 1

// Hello opens a sequenced connection: the agent announces its source id
// and the last epoch sequence number it assigned. The receiver replies
// with an Ack carrying the newest durably-applied sequence for that
// source, and the agent replays everything after it.
type Hello struct {
	Source uint32
	Seq    uint64
}

// Ack acknowledges that every epoch of a source up to and including Seq
// is durable on the stream processor (applied, and covered by a snapshot
// when checkpointing is enabled). The agent prunes its replay buffer up
// to Seq.
type Ack struct {
	Source uint32
	Seq    uint64
}

// EpochEnd commits one shipped epoch: every data frame since the previous
// EpochEnd belongs to epoch Seq, which the receiver applies atomically
// (all frames, then the watermark) exactly once — duplicates with
// Seq ≤ last applied are discarded whole.
type EpochEnd struct {
	Seq       uint64
	Watermark int64
}

// SnapshotHeader opens an encoded checkpoint snapshot: the epoch sequence
// it covers, the low watermark, the watermark through which results were
// already emitted, and (agent side) the newest acked epoch.
type SnapshotHeader struct {
	Seq       uint64
	Watermark int64
	EmittedWM int64
	Acked     uint64
}

// SourceState records one source's progress inside an SP snapshot: its
// observed watermark and the last epoch sequence applied for it.
type SourceState struct {
	Source     uint32
	Watermark  int64
	AppliedSeq uint64
}

// LoadFactors records a pipeline's per-proxy load factors inside an agent
// snapshot, so a restarted agent resumes routing exactly where it left
// off (deterministic replay needs identical routing decisions).
type LoadFactors struct {
	Factors []float64
}

// ReplayEpoch carries one fully encoded, unacknowledged epoch (the bytes
// a FrameWriter produced, EpochEnd included) inside an agent snapshot, so
// the replay buffer survives agent restarts.
type ReplayEpoch struct {
	Seq  uint64
	Data []byte
}
