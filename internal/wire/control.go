package wire

// Control payloads for the fault-tolerance protocol (§IV-E): sequenced
// epoch shipping with SP acknowledgements, connection handshakes, and the
// durable snapshot format of internal/checkpoint. Control records travel
// in frames whose StreamID is ControlStreamID so they never collide with
// operator stage ids; on disk the snapshot codec reuses the same frames.

// ControlStreamID tags frames that carry protocol control records
// (handshakes, acks, epoch commits, snapshot metadata) instead of data
// destined for an operator stage.
const ControlStreamID = ^uint32(0) - 1

// ReplRowsStreamID tags frames on a replication connection that mirror
// result-log rows from a primary SP to its warm standby. The rows are
// ordinary result records; the stream id keeps them apart from operator
// stages and from watermark/control frames.
const ReplRowsStreamID = ^uint32(0) - 2

// Hello opens a sequenced connection: the agent announces its source id,
// the last epoch sequence number it assigned, the newest wire version it
// speaks (0 from pre-versioning builds, meaning v1), the newest primary
// term it has observed (0 from pre-HA builds), and whether it can emit
// per-frame flate compression on v2 columnar frames. The receiver
// replies with an Ack carrying the newest durably-applied sequence for
// that source plus its own version, term and compression support; both
// sides then use min(hello, ack) for the version, the agent adopts the
// larger term, and compression is used only when both sides advertise
// it. An SP that sees a Hello carrying a term above its own knows a
// newer primary was promoted and fences itself (rejects the connection).
// Hello records travel alone in their frame (the trailing extensions
// rely on it).
//
// Class and Tenant are the admission-control extension (appended after
// Compress): the agent declares its SLO class (the wire encoding of
// internal/admission — 0 means unspecified and decodes to the default
// class) and the tenant its traffic is accounted to (empty from
// pre-admission builds; the receiver then buckets by source id).
type Hello struct {
	Source   uint32
	Seq      uint64
	Version  uint32
	Term     uint64
	Compress bool
	Class    byte
	Tenant   string
}

// Ack acknowledges that every epoch of a source up to and including Seq
// is durable on the stream processor (applied, and covered by a snapshot
// when checkpointing is enabled). The agent prunes its replay buffer up
// to Seq. Version advertises the receiver's newest wire version, Term
// its primary term, and Compress whether it decodes flate-compressed
// columnar frames (all zero/false from older builds); like Hello, Ack
// records travel alone in their frame.
//
// ThrottleMicros and Replay are the admission-control extension
// (appended after Compress): ThrottleMicros is a backpressure hint — the
// receiver's admission controller asks the shipper to stretch its epoch
// cadence by that much (0 = no throttling) — and Replay asks the shipper
// to re-send its pending (unacked) epochs on the same connection, which
// the receiver uses to heal the sequence gap a shed epoch left without
// tearing the connection down. Both decode as zero/false from
// pre-admission builds.
type Ack struct {
	Source         uint32
	Seq            uint64
	Version        uint32
	Term           uint64
	Compress       bool
	ThrottleMicros uint64
	Replay         bool
}

// EpochEnd commits one shipped epoch: every data frame since the previous
// EpochEnd belongs to epoch Seq, which the receiver applies atomically
// (all frames, then the watermark) exactly once — duplicates with
// Seq ≤ last applied are discarded whole. Like Hello and Ack, EpochEnd
// records travel alone in their frame, which is what makes the trailing
// trace extension below unambiguous.
//
// TraceID onward is the trace-context extension (appended after
// Watermark): the agent-side half of the cross-process epoch trace that
// the receiver joins with its own decode/wait/ingest/snapshot/replicate/
// ack segments into an obs.EpochTrace. A pre-trace peer's EpochEnd ends
// at Watermark and decodes with TraceID 0 (= untraced); encoders emit
// the extension only when TraceID is nonzero, so untraced epochs stay
// byte-identical to older builds. StartMicros and SentMicros are agent
// wall-clock unix microseconds; SentMicros is stamped when the epoch's
// bytes are sealed into the replay buffer, so on a replayed epoch the
// receiver's ship segment honestly includes the buffering delay.
type EpochEnd struct {
	Seq       uint64
	Watermark int64

	TraceID     uint64 // nonzero arms cross-process tracing for this epoch
	StartMicros int64  // agent clock at epoch start (generate begin)
	GenMicros   uint64 // generate stage duration
	PipeMicros  uint64 // pipeline stage duration
	EncMicros   uint64 // encode stage duration
	SentMicros  int64  // agent clock when the epoch's bytes were sealed
}

// SnapshotHeader opens an encoded checkpoint snapshot: the epoch sequence
// it covers, the low watermark, the watermark through which results were
// already emitted, and (agent side) the newest acked epoch. Delta
// snapshots additionally carry the store id of the snapshot they extend
// (BaseID) and the Delta flag; full snapshots (and files written before
// delta support) leave both zero. Term persists the newest HA fencing
// term the node had observed (trailing extension, 0 from pre-HA files) —
// restoring it keeps a restarted agent or SP from trusting a stale
// primary it had already moved past.
type SnapshotHeader struct {
	Seq       uint64
	Watermark int64
	EmittedWM int64
	Acked     uint64
	BaseID    uint64
	Delta     bool
	Term      uint64
}

// StageMeta describes how one stage's rows in a delta snapshot apply to
// the reconstructed base state: Replace swaps the stage's rows wholesale
// (operators whose rows are not keyed, e.g. buffered join misses), while
// the default merges rows by (window, key) — a delta row supersedes the
// base row for its group. Closed lists windows the operator flushed
// since the base snapshot; their rows are dropped from the
// reconstruction so restored state does not resurrect emitted windows.
type StageMeta struct {
	Stage   int
	Replace bool
	Closed  []int64
}

// SourceState records one source's progress inside an SP snapshot: its
// observed watermark and the last epoch sequence applied for it.
type SourceState struct {
	Source     uint32
	Watermark  int64
	AppliedSeq uint64
}

// LoadFactors records a pipeline's per-proxy load factors inside an agent
// snapshot, so a restarted agent resumes routing exactly where it left
// off (deterministic replay needs identical routing decisions).
type LoadFactors struct {
	Factors []float64
}

// ReplayEpoch carries one fully encoded, unacknowledged epoch (the bytes
// a FrameWriter produced, EpochEnd included) inside an agent snapshot, so
// the replay buffer survives agent restarts.
type ReplayEpoch struct {
	Seq  uint64
	Data []byte
}

// Replication control records (internal/ha): a warm-standby SP attaches
// to the primary's replication listener with a ReplHello, the primary
// answers with its current full state and result-log tail and then
// streams every durable snapshot it saves; the standby acknowledges each
// applied snapshot so the primary can report replication lag.

// ReplHello opens a replication connection: the standby announces the
// newest primary snapshot id it has applied and the watermark through
// which its mirrored result log is already populated. The primary always
// resyncs state with a full folded snapshot; LogWM bounds how much
// result-log tail must be re-sent to heal any gap.
type ReplHello struct {
	LastID uint64
	LogWM  int64
}

// ReplSnapshot carries one durable snapshot from primary to standby:
// the primary store id it was saved under, the id of the snapshot a
// delta extends (0 for full), the snapshot's progress measure in applied
// epochs, the primary's fencing term, and the snapshot's full encoding
// (the bytes Snapshot.Encode produced).
type ReplSnapshot struct {
	ID     uint64
	BaseID uint64
	Seq    uint64
	Term   uint64
	Delta  bool
	Data   []byte
}

// ReplAck reports that the standby durably applied the snapshot with the
// given primary store id and progress measure; the primary's replication
// lag gauge is its newest published Seq minus the newest acked one.
type ReplAck struct {
	ID  uint64
	Seq uint64
}
