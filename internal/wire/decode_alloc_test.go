package wire

import (
	"bytes"
	"testing"

	"jarvis/internal/telemetry"
)

// epochScaleFrame builds one columnar frame at evaluation scale: the
// ~38k-probe drain a recovering SP re-applies per replayed epoch.
func epochScaleFrame(tb testing.TB) []byte {
	tb.Helper()
	var batch telemetry.Batch
	for i := 0; i < 38000; i++ {
		p := &telemetry.PingProbe{
			Timestamp: int64(i * 26), SrcIP: 0x0A000001, SrcCluster: 0x0A00,
			DstIP: 0x0B000000 + uint32(i%20000), DstCluster: 0x0B00,
			RTTMicros: 400 + uint32(i%97),
		}
		if i%7 == 0 {
			p.ErrCode = 1
		}
		batch = append(batch, telemetry.NewProbeRecord(p))
	}
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.SetColumnar(true)
	if err := fw.WriteFrame(Frame{StreamID: 0, Source: 1, Records: batch}); err != nil {
		tb.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestWarmDecodeAllocs is the tier-1 regression guard for the zero-alloc
// decode path: a warm reader materializing a 38k-record columnar frame
// must allocate O(sections), not O(records). The v1 record-at-a-time
// decoder allocated ~38k times on this input; the bound fails loudly on
// any regression back toward per-record allocation.
func TestWarmDecodeAllocs(t *testing.T) {
	data := epochScaleFrame(t)
	fr := NewFrameReader(bytes.NewReader(data))
	// Warm up: grow the frame buffer, scratch columns and intern cache.
	for i := 0; i < 3; i++ {
		fr.Reset(bytes.NewReader(data))
		if _, err := fr.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(20, func() {
		fr.Reset(bytes.NewReader(data))
		if _, err := fr.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	})
	// Tolerated: the per-decode arena, the records slice and small
	// scratch growth — nothing proportional to the 38k records.
	if avg > 16 {
		t.Fatalf("warm columnar decode allocates %.1f times for a 38k-record frame (want ≤ 16)", avg)
	}
}

// BenchmarkColumnarDecodeEpoch tracks the wire-level decode rate of one
// epoch-scale columnar frame.
func BenchmarkColumnarDecodeEpoch(b *testing.B) {
	data := epochScaleFrame(b)
	fr := NewFrameReader(bytes.NewReader(data))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.Reset(bytes.NewReader(data))
		if _, err := fr.ReadFrame(); err != nil {
			b.Fatal(err)
		}
	}
}
