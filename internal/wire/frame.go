package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"jarvis/internal/telemetry"
)

// MaxFrameSize bounds a single frame to protect against corrupt length
// prefixes. A frame holds one epoch's batch for one stream; 64 MiB is far
// above any realistic epoch.
const MaxFrameSize = 64 << 20

// FrameWriter writes length-prefixed frames, each containing a batch of
// encoded records for one logical stream (identified by StreamID).
type FrameWriter struct {
	w        *bufio.Writer
	buf      []byte
	columnar bool
	enc      columnarEncoder
}

// NewFrameWriter wraps w in a buffered frame writer.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriter(w)}
}

// SetColumnar switches data frames to the v2 columnar encoding (control
// frames stay v1 — they are single tiny records). Enable it only when
// the peer negotiated wire v2, or when the bytes are consumed by this
// build's own FrameReader (snapshot files, benchmarks).
func (fw *FrameWriter) SetColumnar(v bool) { fw.columnar = v }

// Reset redirects the writer to w, discarding unflushed data but keeping
// the internal encode buffer — repeated encoders (the checkpoint store)
// avoid re-growing a megabyte-scale buffer on every snapshot.
func (fw *FrameWriter) Reset(w io.Writer) { fw.w.Reset(w) }

// Frame is one unit of transfer: a batch of records destined for the
// stream-processor-side control proxy identified by StreamID (paper §V:
// "control proxy attaches an identifier for the operator on stream
// processor that should receive records for further processing").
type Frame struct {
	// StreamID names the SP-side operator/proxy that must consume the
	// batch: index of the drain stage in the deployed plan.
	StreamID uint32
	// Source identifies the data source node the frame came from.
	Source uint32
	// Records is the batch payload.
	Records telemetry.Batch
	// Columnar reports (on decode) that the frame arrived in the v2
	// columnar encoding. WriteFrame ignores it; the writer's SetColumnar
	// mode decides the outgoing encoding.
	Columnar bool
	// Cols holds the frame's payload in SoA form instead of Records when
	// the reader runs in columnar-execution mode (SetColumnarExec) and
	// the frame arrived columnar. Exactly one of Records/Cols is set for
	// a data frame.
	Cols *ColumnarBatch
}

// PayloadBytes returns the frame's accounting payload size, whichever
// form it was decoded into.
func (f *Frame) PayloadBytes() int64 {
	if f.Cols != nil {
		return f.Cols.TotalBytes()
	}
	return f.Records.TotalBytes()
}

// WriteFrame encodes and writes one frame. It does not flush; call Flush
// at epoch boundaries.
func (fw *FrameWriter) WriteFrame(f Frame) error {
	fw.buf = fw.buf[:0]
	fw.buf = binary.BigEndian.AppendUint32(fw.buf, f.StreamID)
	fw.buf = binary.BigEndian.AppendUint32(fw.buf, f.Source)
	var err error
	if fw.columnar && f.StreamID != ControlStreamID {
		fw.buf = binary.BigEndian.AppendUint32(fw.buf, ColumnarMarker)
		fw.buf, err = fw.enc.encode(fw.buf, f.Records)
		if err != nil {
			return err
		}
		return fw.writePayload()
	}
	fw.buf = binary.BigEndian.AppendUint32(fw.buf, uint32(len(f.Records)))
	for _, rec := range f.Records {
		fw.buf, err = EncodeRecord(fw.buf, rec)
		if err != nil {
			return err
		}
	}
	return fw.writePayload()
}

// writePayload length-prefixes and writes the assembled frame in fw.buf.
func (fw *FrameWriter) writePayload() error {
	if len(fw.buf) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds max %d", len(fw.buf), MaxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(fw.buf)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := fw.w.Write(fw.buf)
	return err
}

// Flush flushes buffered frames to the underlying writer.
func (fw *FrameWriter) Flush() error { return fw.w.Flush() }

// FrameReader reads frames written by FrameWriter. It decodes both wire
// versions transparently; its columnar decoder (and thus the
// cross-frame string canonicalization cache) lives for the reader's
// lifetime — one reader per connection or per snapshot store.
type FrameReader struct {
	r       *bufio.Reader
	buf     []byte
	dec     *ColumnarDecoder
	colExec bool
}

// NewFrameReader wraps r in a buffered frame reader.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Reset redirects the reader to r, discarding unread bytes but keeping
// the internal frame buffer and the columnar decoder (with its
// canonicalization cache).
func (fr *FrameReader) Reset(r io.Reader) { fr.r.Reset(r) }

// UseDecoder shares a columnar decoder (and its string canonicalization
// cache) with this reader — callers that read many related streams (a
// snapshot store reading a base + delta chain) decode repeated strings
// to one allocation across all of them.
func (fr *FrameReader) UseDecoder(d *ColumnarDecoder) { fr.dec = d }

// SetColumnarExec switches the reader to columnar-execution decoding:
// columnar data frames are returned as SoA batches (Frame.Cols) instead
// of materialized records, so a v2 connection's payload can flow
// decode→execute with zero row materialization. Non-columnar frames
// (v1 peers, control frames) still decode to Records.
func (fr *FrameReader) SetColumnarExec(v bool) { fr.colExec = v }

// ReadFrame reads and decodes the next frame. It returns io.EOF cleanly at
// end of stream.
func (fr *FrameReader) ReadFrame() (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return Frame{}, fmt.Errorf("wire: frame length %d exceeds max %d", n, MaxFrameSize)
	}
	// Read in bounded steps, growing with the bytes that actually
	// arrive: a corrupt length prefix must not force a MaxFrameSize
	// allocation for a stream that ends after a few bytes.
	fr.buf = fr.buf[:0]
	for read := 0; read < int(n); {
		step := int(n) - read
		if step > 1<<20 {
			step = 1 << 20
		}
		fr.buf = slices.Grow(fr.buf, step)[:read+step]
		if _, err := io.ReadFull(fr.r, fr.buf[read:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
		read += step
	}
	if n < 12 {
		return Frame{}, ErrShortBuffer
	}
	f := Frame{
		StreamID: binary.BigEndian.Uint32(fr.buf[0:]),
		Source:   binary.BigEndian.Uint32(fr.buf[4:]),
	}
	count := binary.BigEndian.Uint32(fr.buf[8:])
	if count == ColumnarMarker {
		if fr.dec == nil {
			fr.dec = NewColumnarDecoder()
		}
		f.Columnar = true
		if fr.colExec {
			f.Cols = &ColumnarBatch{}
			if err := fr.dec.DecodeColumnar(fr.buf[12:], f.Cols); err != nil {
				return Frame{}, fmt.Errorf("wire: columnar frame: %w", err)
			}
			return f, nil
		}
		if err := fr.dec.DecodeBatch(fr.buf[12:], &f.Records); err != nil {
			return Frame{}, fmt.Errorf("wire: columnar frame: %w", err)
		}
		return f, nil
	}
	// Every record costs at least a tag byte plus the 16-byte header, so
	// a count the remaining payload cannot hold is corrupt — reject it
	// before pre-allocating a batch sized by attacker-controlled input.
	if uint64(count)*17 > uint64(n-12) {
		return Frame{}, fmt.Errorf("wire: record count %d exceeds frame payload of %d bytes", count, n-12)
	}
	off := 12
	f.Records = make(telemetry.Batch, 0, count)
	for i := uint32(0); i < count; i++ {
		rec, k, err := DecodeRecord(fr.buf[off:])
		if err != nil {
			return Frame{}, fmt.Errorf("wire: record %d/%d: %w", i, count, err)
		}
		off += k
		f.Records = append(f.Records, rec)
	}
	return f, nil
}
