package wire

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"jarvis/internal/telemetry"
)

// MaxFrameSize bounds a single frame to protect against corrupt length
// prefixes. A frame holds one epoch's batch for one stream; 64 MiB is far
// above any realistic epoch.
const MaxFrameSize = 64 << 20

// FrameWriter writes length-prefixed frames, each containing a batch of
// encoded records for one logical stream (identified by StreamID).
type FrameWriter struct {
	w        *bufio.Writer
	buf      []byte
	columnar bool
	compress bool
	cbuf     []byte // raw columnar payload scratch when compressing
	zw       *flate.Writer
	enc      columnarEncoder
}

// NewFrameWriter wraps w in a buffered frame writer.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriter(w)}
}

// SetColumnar switches data frames to the v2 columnar encoding (control
// frames stay v1 — they are single tiny records). Enable it only when
// the peer negotiated wire v2, or when the bytes are consumed by this
// build's own FrameReader (snapshot files, benchmarks).
func (fw *FrameWriter) SetColumnar(v bool) { fw.columnar = v }

// SetCompression switches columnar data frames to the flate-compressed
// encoding (control frames and v1 frames are never compressed). It has
// no effect unless SetColumnar(true) is also in force. Enable it only
// when the peer advertised compression support in its Hello/Ack, or when
// the bytes are consumed by this build's own FrameReader.
func (fw *FrameWriter) SetCompression(v bool) { fw.compress = v }

// Reset redirects the writer to w, discarding unflushed data but keeping
// the internal encode buffer — repeated encoders (the checkpoint store)
// avoid re-growing a megabyte-scale buffer on every snapshot.
func (fw *FrameWriter) Reset(w io.Writer) { fw.w.Reset(w) }

// Frame is one unit of transfer: a batch of records destined for the
// stream-processor-side control proxy identified by StreamID (paper §V:
// "control proxy attaches an identifier for the operator on stream
// processor that should receive records for further processing").
type Frame struct {
	// StreamID names the SP-side operator/proxy that must consume the
	// batch: index of the drain stage in the deployed plan.
	StreamID uint32
	// Source identifies the data source node the frame came from.
	Source uint32
	// Records is the batch payload.
	Records telemetry.Batch
	// Columnar reports (on decode) that the frame arrived in the v2
	// columnar encoding. WriteFrame ignores it; the writer's SetColumnar
	// mode decides the outgoing encoding.
	Columnar bool
	// Cols holds the frame's payload in SoA form instead of Records when
	// the reader runs in columnar-execution mode (SetColumnarExec) and
	// the frame arrived columnar. Exactly one of Records/Cols is set for
	// a data frame.
	Cols *ColumnarBatch
}

// PayloadBytes returns the frame's accounting payload size, whichever
// form it was decoded into.
func (f *Frame) PayloadBytes() int64 {
	if f.Cols != nil {
		return f.Cols.TotalBytes()
	}
	return f.Records.TotalBytes()
}

// WriteFrame encodes and writes one frame. A frame may carry its payload
// as Records or (on the columnar send path) as Cols; when both are set,
// Cols wins. It does not flush; call Flush at epoch boundaries.
func (fw *FrameWriter) WriteFrame(f Frame) error {
	fw.buf = fw.buf[:0]
	fw.buf = binary.BigEndian.AppendUint32(fw.buf, f.StreamID)
	fw.buf = binary.BigEndian.AppendUint32(fw.buf, f.Source)
	var err error
	if fw.columnar && f.StreamID != ControlStreamID {
		if fw.compress {
			fw.cbuf, err = fw.encodePayload(fw.cbuf[:0], f)
			if err != nil {
				return err
			}
			fw.buf = binary.BigEndian.AppendUint32(fw.buf, ColumnarFlateMarker)
			fw.buf = binary.AppendUvarint(fw.buf, uint64(len(fw.cbuf)))
			if err := fw.deflate(fw.cbuf); err != nil {
				return err
			}
			return fw.writePayload()
		}
		fw.buf = binary.BigEndian.AppendUint32(fw.buf, ColumnarMarker)
		fw.buf, err = fw.encodePayload(fw.buf, f)
		if err != nil {
			return err
		}
		return fw.writePayload()
	}
	recs := f.Records
	if f.Cols != nil {
		// A v1 frame cannot carry columns — materialize them. This only
		// happens when a columnar epoch is shipped to a v1-only peer.
		recs = recs[:0:0]
		f.Cols.AppendRows(&recs)
	}
	fw.buf = binary.BigEndian.AppendUint32(fw.buf, uint32(len(recs)))
	for _, rec := range recs {
		fw.buf, err = EncodeRecord(fw.buf, rec)
		if err != nil {
			return err
		}
	}
	return fw.writePayload()
}

// encodePayload appends the frame's columnar payload (table offset,
// sections, string table) to dst, straight from columns when the frame
// carries them.
func (fw *FrameWriter) encodePayload(dst []byte, f Frame) ([]byte, error) {
	if f.Cols != nil {
		return fw.enc.encodeCols(dst, f.Cols)
	}
	return fw.enc.encode(dst, f.Records)
}

// sliceWriter appends to a byte slice through a stable pointer, so the
// flate writer can emit into fw.buf while it reallocates.
type sliceWriter struct{ b *[]byte }

func (s sliceWriter) Write(p []byte) (int, error) {
	*s.b = append(*s.b, p...)
	return len(p), nil
}

// deflate appends the flate stream of raw to fw.buf.
func (fw *FrameWriter) deflate(raw []byte) error {
	if fw.zw == nil {
		zw, err := flate.NewWriter(sliceWriter{&fw.buf}, flate.BestSpeed)
		if err != nil {
			return err
		}
		fw.zw = zw
	} else {
		fw.zw.Reset(sliceWriter{&fw.buf})
	}
	if _, err := fw.zw.Write(raw); err != nil {
		return err
	}
	return fw.zw.Close()
}

// writePayload length-prefixes and writes the assembled frame in fw.buf.
func (fw *FrameWriter) writePayload() error {
	if len(fw.buf) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds max %d", len(fw.buf), MaxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(fw.buf)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := fw.w.Write(fw.buf)
	return err
}

// Flush flushes buffered frames to the underlying writer.
func (fw *FrameWriter) Flush() error { return fw.w.Flush() }

// FrameReader reads frames written by FrameWriter. It decodes both wire
// versions transparently; its columnar decoder (and thus the
// cross-frame string canonicalization cache) lives for the reader's
// lifetime — one reader per connection or per snapshot store.
type FrameReader struct {
	r       *bufio.Reader
	buf     []byte
	dec     *ColumnarDecoder
	colExec bool
	zsrc    *bytes.Reader
	zr      io.ReadCloser
	zbuf    []byte
	stats   FrameStats
}

// FrameStats is a reader's cumulative wire accounting: frame count,
// bytes as carried on the wire, and the equivalent uncompressed bytes
// (equal to WireBytes when no frame was compressed). The ratio
// RawBytes/WireBytes is the effective wire compression ratio.
type FrameStats struct {
	Frames           int64
	WireBytes        int64
	RawBytes         int64
	CompressedFrames int64
}

// Stats returns the reader's cumulative wire accounting.
func (fr *FrameReader) Stats() FrameStats { return fr.stats }

// NewFrameReader wraps r in a buffered frame reader.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Reset redirects the reader to r, discarding unread bytes but keeping
// the internal frame buffer and the columnar decoder (with its
// canonicalization cache).
func (fr *FrameReader) Reset(r io.Reader) { fr.r.Reset(r) }

// UseDecoder shares a columnar decoder (and its string canonicalization
// cache) with this reader — callers that read many related streams (a
// snapshot store reading a base + delta chain) decode repeated strings
// to one allocation across all of them.
func (fr *FrameReader) UseDecoder(d *ColumnarDecoder) { fr.dec = d }

// EnableArenaPooling switches the reader's columnar decoder to pooled
// column arenas (creating the decoder if needed). The connection owner
// must call RecycleArenas at epoch boundaries, after every decoded batch
// of the epoch has been consumed.
func (fr *FrameReader) EnableArenaPooling() {
	if fr.dec == nil {
		fr.dec = NewColumnarDecoder()
	}
	fr.dec.EnableArenaPooling()
}

// RecycleArenas returns the column arenas handed out since the last call
// to the decoder's pool. Call only when no ColumnarBatch decoded from
// this reader is referenced anymore.
func (fr *FrameReader) RecycleArenas() {
	if fr.dec != nil {
		fr.dec.RecycleArenas()
	}
}

// RawFrame returns the wire bytes of the frame the last successful
// ReadFrame decoded: the 12-byte header plus payload exactly as carried
// on the wire (still deflated for compressed frames), without the 4-byte
// length prefix. The slice aliases the reader's internal buffer and is
// valid only until the next ReadFrame — callers that retain frames (the
// transport flight recorder) must copy.
func (fr *FrameReader) RawFrame() []byte { return fr.buf }

// SetColumnarExec switches the reader to columnar-execution decoding:
// columnar data frames are returned as SoA batches (Frame.Cols) instead
// of materialized records, so a v2 connection's payload can flow
// decode→execute with zero row materialization. Non-columnar frames
// (v1 peers, control frames) still decode to Records.
func (fr *FrameReader) SetColumnarExec(v bool) { fr.colExec = v }

// ReadFrame reads and decodes the next frame. It returns io.EOF cleanly at
// end of stream.
func (fr *FrameReader) ReadFrame() (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return Frame{}, fmt.Errorf("wire: frame length %d exceeds max %d", n, MaxFrameSize)
	}
	// Read in bounded steps, growing with the bytes that actually
	// arrive: a corrupt length prefix must not force a MaxFrameSize
	// allocation for a stream that ends after a few bytes.
	fr.buf = fr.buf[:0]
	for read := 0; read < int(n); {
		step := int(n) - read
		if step > 1<<20 {
			step = 1 << 20
		}
		fr.buf = slices.Grow(fr.buf, step)[:read+step]
		if _, err := io.ReadFull(fr.r, fr.buf[read:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
		read += step
	}
	if n < 12 {
		return Frame{}, ErrShortBuffer
	}
	fr.stats.Frames++
	fr.stats.WireBytes += int64(n) + 4
	f := Frame{
		StreamID: binary.BigEndian.Uint32(fr.buf[0:]),
		Source:   binary.BigEndian.Uint32(fr.buf[4:]),
	}
	count := binary.BigEndian.Uint32(fr.buf[8:])
	if count == ColumnarMarker {
		fr.stats.RawBytes += int64(n) + 4
		return fr.decodeColumnar(f, fr.buf[12:])
	}
	if count == ColumnarFlateMarker {
		raw, err := fr.inflateFramePayload(fr.buf[12:])
		if err != nil {
			return Frame{}, fmt.Errorf("wire: compressed frame: %w", err)
		}
		// The equivalent uncompressed frame: 4-byte length prefix plus the
		// 12-byte header plus the inflated columnar payload.
		fr.stats.CompressedFrames++
		fr.stats.RawBytes += int64(len(raw)) + 16
		return fr.decodeColumnar(f, raw)
	}
	fr.stats.RawBytes += int64(n) + 4
	// Every record costs at least a tag byte plus the 16-byte header, so
	// a count the remaining payload cannot hold is corrupt — reject it
	// before pre-allocating a batch sized by attacker-controlled input.
	if uint64(count)*17 > uint64(n-12) {
		return Frame{}, fmt.Errorf("wire: record count %d exceeds frame payload of %d bytes", count, n-12)
	}
	off := 12
	f.Records = make(telemetry.Batch, 0, count)
	for i := uint32(0); i < count; i++ {
		rec, k, err := DecodeRecord(fr.buf[off:])
		if err != nil {
			return Frame{}, fmt.Errorf("wire: record %d/%d: %w", i, count, err)
		}
		off += k
		f.Records = append(f.Records, rec)
	}
	return f, nil
}

// decodeColumnar decodes a columnar payload into the frame, SoA or
// materialized depending on the reader's execution mode.
func (fr *FrameReader) decodeColumnar(f Frame, payload []byte) (Frame, error) {
	if fr.dec == nil {
		fr.dec = NewColumnarDecoder()
	}
	f.Columnar = true
	if fr.colExec {
		f.Cols = &ColumnarBatch{}
		if err := fr.dec.DecodeColumnar(payload, f.Cols); err != nil {
			return Frame{}, fmt.Errorf("wire: columnar frame: %w", err)
		}
		return f, nil
	}
	if err := fr.dec.DecodeBatch(payload, &f.Records); err != nil {
		return Frame{}, fmt.Errorf("wire: columnar frame: %w", err)
	}
	return f, nil
}

// inflateFramePayload decompresses a ColumnarFlateMarker frame body
// (uvarint raw length followed by a flate stream) into the reader's
// reusable scratch buffer, returning the raw columnar payload.
func (fr *FrameReader) inflateFramePayload(body []byte) ([]byte, error) {
	rawLen, k := binary.Uvarint(body)
	if k <= 0 {
		return nil, ErrShortBuffer
	}
	if rawLen > MaxFrameSize {
		return nil, fmt.Errorf("wire: compressed payload of %d bytes exceeds max %d", rawLen, MaxFrameSize)
	}
	if fr.zsrc == nil {
		fr.zsrc = bytes.NewReader(body[k:])
	} else {
		fr.zsrc.Reset(body[k:])
	}
	if fr.zr == nil {
		fr.zr = flate.NewReader(fr.zsrc)
	} else if err := fr.zr.(flate.Resetter).Reset(fr.zsrc, nil); err != nil {
		return nil, err
	}
	fr.zbuf = slices.Grow(fr.zbuf[:0], int(rawLen))[:rawLen]
	if _, err := io.ReadFull(fr.zr, fr.zbuf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	var one [1]byte
	if n, _ := fr.zr.Read(one[:]); n > 0 {
		return nil, fmt.Errorf("wire: compressed payload longer than declared %d bytes", rawLen)
	}
	return fr.zbuf, nil
}

// DecompressFrames rewrites a sequence of encoded frames (the bytes a
// FrameWriter produced for one epoch), replacing every flate-compressed
// columnar frame with its uncompressed columnar equivalent and copying
// all other frames verbatim. The shipper uses it to downgrade a replay
// buffer stored compressed for a v2 peer that did not advertise
// compression — no record decode, no re-encode, byte-stable sections.
func DecompressFrames(data []byte) ([]byte, error) {
	var zsrc *bytes.Reader
	var zr io.ReadCloser
	out := make([]byte, 0, len(data))
	for off := 0; off < len(data); {
		if off+4 > len(data) {
			return nil, ErrShortBuffer
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		if n > MaxFrameSize || off+4+n > len(data) {
			return nil, ErrShortBuffer
		}
		frame := data[off+4 : off+4+n]
		off += 4 + n
		if n < 12 || binary.BigEndian.Uint32(frame[8:]) != ColumnarFlateMarker {
			out = append(out, data[off-4-n:off]...)
			continue
		}
		body := frame[12:]
		rawLen, k := binary.Uvarint(body)
		if k <= 0 {
			return nil, ErrShortBuffer
		}
		if rawLen > MaxFrameSize {
			return nil, fmt.Errorf("wire: compressed payload of %d bytes exceeds max %d", rawLen, MaxFrameSize)
		}
		if zsrc == nil {
			zsrc = bytes.NewReader(body[k:])
			zr = flate.NewReader(zsrc)
		} else {
			zsrc.Reset(body[k:])
			if err := zr.(flate.Resetter).Reset(zsrc, nil); err != nil {
				return nil, err
			}
		}
		out = binary.BigEndian.AppendUint32(out, uint32(12+rawLen))
		out = append(out, frame[:8]...)
		out = binary.BigEndian.AppendUint32(out, ColumnarMarker)
		start := len(out)
		out = slices.Grow(out, int(rawLen))[:start+int(rawLen)]
		if _, err := io.ReadFull(zr, out[start:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return out, nil
}
