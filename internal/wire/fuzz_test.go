package wire

import (
	"bytes"
	"io"
	"testing"

	"jarvis/internal/telemetry"
)

// seedRecords returns one record of every encodable payload kind, so the
// fuzz corpora start from valid encodings of each tag.
func seedRecords() []telemetry.Record {
	agg := telemetry.NewAggRow(telemetry.StrKey("t|lat|3"), 2, 41.5)
	q := telemetry.NewQuantileRow(telemetry.NumKey(9), 1, 0, 1000, 8)
	q.Observe(250)
	return []telemetry.Record{
		{Time: 1, WireSize: telemetry.PingProbeWireSize, Data: &telemetry.PingProbe{Timestamp: 1, SrcIP: 2, DstIP: 3, RTTMicros: 99}},
		{Time: 2, WireSize: telemetry.ToRProbeWireSize, Data: &telemetry.ToRProbe{Timestamp: 2, SrcToR: 1, DstToR: 2, RTTMicros: 7}},
		{Time: 3, WireSize: 5, Data: &telemetry.LogLine{Timestamp: 3, Raw: "a=b c"}},
		{Time: 4, WireSize: 20, Data: &telemetry.JobStats{Timestamp: 4, Tenant: "t", StatName: "s", Stat: 1.5, Bucket: -2}},
		{Time: 5, Window: 2, WireSize: agg.AggRowWireSize(), Data: &agg},
		{Time: 6, Window: 1, WireSize: q.WireSize(), Data: q},
		{Time: 7, WireSize: 17, Data: &Watermark{Time: 7}},
		{Time: 8, WireSize: 29, Data: &Hello{Source: 3, Seq: 12, Version: 2, Term: 1, Compress: true, Class: 3, Tenant: "acme"}},
		{Time: 9, WireSize: 29, Data: &Ack{Source: 3, Seq: 11, Version: 2, Term: 1, ThrottleMicros: 250_000, Replay: true}},
		{Time: 10, WireSize: 33, Data: &EpochEnd{Seq: 12, Watermark: 1_000_000}},
		{Time: 11, WireSize: 49, Data: &SnapshotHeader{Seq: 5, Watermark: 9, EmittedWM: 8, Acked: 4}},
		{Time: 12, WireSize: 37, Data: &SourceState{Source: 2, Watermark: 7, AppliedSeq: 6}},
		{Time: 13, WireSize: 34, Data: &LoadFactors{Factors: []float64{1, 0.5}}},
		{Time: 14, WireSize: 29, Data: &ReplayEpoch{Seq: 2, Data: []byte{1, 2, 3}}},
	}
}

// FuzzDecodeRecord checks that DecodeRecord never panics on arbitrary
// bytes, and that every successfully decoded record round-trips: its
// re-encoding decodes to a record with an identical re-encoding.
func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range seedRecords() {
		enc, err := EncodeRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc, err := EncodeRecord(nil, rec)
		if err != nil {
			t.Fatalf("re-encode of decoded record: %v", err)
		}
		rec2, n2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode of re-encoding: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		enc2, err := EncodeRecord(nil, rec2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not stable:\n%x\n%x", enc, enc2)
		}
	})
}

// FuzzDecodeControlHandshake targets the Hello/Ack trailing-extension
// decoders specifically: any byte string that decodes to a handshake
// record must re-encode stably, and the admission extension fields
// (Class/Tenant on Hello, ThrottleMicros/Replay on Ack) must survive a
// second decode unchanged. Seeds cover full extended encodings and the
// truncated prefixes a pre-extension peer would emit.
func FuzzDecodeControlHandshake(f *testing.F) {
	seeds := []telemetry.Record{
		{Time: 1, WireSize: 29, Data: &Hello{Source: 3, Seq: 12}},
		{Time: 1, WireSize: 29, Data: &Hello{Source: 3, Seq: 12, Version: WireV2, Term: 4, Compress: true, Class: 1, Tenant: "best-effort-tenant"}},
		{Time: 1, WireSize: 29, Data: &Hello{Source: 7, Seq: 0, Class: 3, Tenant: "acme"}},
		{Time: 1, WireSize: 29, Data: &Ack{Source: 3, Seq: 11}},
		{Time: 1, WireSize: 29, Data: &Ack{Source: 3, Seq: 11, Version: WireV2, Term: 4, Compress: true, ThrottleMicros: 2_000_000, Replay: true}},
		{Time: 1, WireSize: 29, Data: &Ack{Source: 7, Seq: 5, ThrottleMicros: 1}},
	}
	for _, rec := range seeds {
		enc, err := EncodeRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		// Truncated at every extension boundary: version, term, compress,
		// and the two admission fields — each prefix is a valid encoding
		// some older build emits.
		for cut := 1; cut <= 4 && cut < len(enc); cut++ {
			f.Add(enc[:len(enc)-cut])
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, _, err := DecodeRecord(data)
		if err != nil {
			return
		}
		switch p := rec.Data.(type) {
		case *Hello, *Ack:
			_ = p
		default:
			return
		}
		enc, err := EncodeRecord(nil, rec)
		if err != nil {
			t.Fatalf("re-encode of decoded handshake: %v", err)
		}
		rec2, n2, err := DecodeRecord(enc)
		if err != nil || n2 != len(enc) {
			t.Fatalf("decode of re-encoding: n=%d err=%v", n2, err)
		}
		switch p := rec.Data.(type) {
		case *Hello:
			q, ok := rec2.Data.(*Hello)
			if !ok || *q != *p {
				t.Fatalf("hello extension fields changed: %+v vs %+v", rec2.Data, p)
			}
		case *Ack:
			q, ok := rec2.Data.(*Ack)
			if !ok || *q != *p {
				t.Fatalf("ack extension fields changed: %+v vs %+v", rec2.Data, p)
			}
		}
		enc2, err := EncodeRecord(nil, rec2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("handshake encoding not stable:\n%x\n%x", enc, enc2)
		}
	})
}

// FuzzDecodeEpochTrace targets the EpochEnd trailing trace-context
// extension: any byte string that decodes to an EpochEnd must re-encode
// stably, and when the trace is armed (TraceID nonzero) every extension
// field must survive a second decode unchanged; an untraced EpochEnd
// must re-encode to the 33-byte pre-trace form with a zeroed extension.
// Seeds cover the untraced form, fully traced epochs (including negative
// clock stamps), and truncations at every extension-field boundary — the
// prefixes a mixed-version fleet actually emits.
func FuzzDecodeEpochTrace(f *testing.F) {
	seeds := []telemetry.Record{
		{Time: 1, WireSize: 33, Data: &EpochEnd{Seq: 12, Watermark: 1_000_000}},
		{Time: 1, WireSize: 33, Data: &EpochEnd{Seq: 412, Watermark: 9_000_000,
			TraceID: 3<<40 | 412, StartMicros: 1_722_000_000_000_000,
			GenMicros: 180, PipeMicros: 1_630, EncMicros: 240,
			SentMicros: 1_722_000_000_002_050}},
		{Time: 1, WireSize: 33, Data: &EpochEnd{Seq: 1, Watermark: -5,
			TraceID: 1, StartMicros: -1, SentMicros: -2}},
	}
	for _, rec := range seeds {
		enc, err := EncodeRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		// Truncated at (and inside) every trailing field: each prefix is
		// either a valid pre-trace encoding or a partially applied
		// extension, and none may panic or mis-consume.
		for cut := 1; cut <= 8 && cut < len(enc); cut++ {
			f.Add(enc[:len(enc)-cut])
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, _, err := DecodeRecord(data)
		if err != nil {
			return
		}
		p, ok := rec.Data.(*EpochEnd)
		if !ok {
			return
		}
		enc, err := EncodeRecord(nil, rec)
		if err != nil {
			t.Fatalf("re-encode of decoded EpochEnd: %v", err)
		}
		rec2, n2, err := DecodeRecord(enc)
		if err != nil || n2 != len(enc) {
			t.Fatalf("decode of re-encoding: n=%d err=%v", n2, err)
		}
		q, ok := rec2.Data.(*EpochEnd)
		if !ok {
			t.Fatalf("re-encoding decoded to %T", rec2.Data)
		}
		if p.TraceID != 0 {
			if *q != *p {
				t.Fatalf("trace extension fields changed: %+v vs %+v", q, p)
			}
		} else {
			// Untraced epochs re-encode to the pre-trace form: trailing
			// garbage behind a zero TraceID must not survive the round
			// trip.
			if q.Seq != p.Seq || q.Watermark != p.Watermark || *q != (EpochEnd{Seq: p.Seq, Watermark: p.Watermark}) {
				t.Fatalf("untraced EpochEnd not canonical: %+v", q)
			}
		}
		enc2, err := EncodeRecord(nil, rec2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("EpochEnd encoding not stable:\n%x\n%x", enc, enc2)
		}
	})
}

// FuzzReadFrame checks that the frame reader never panics on arbitrary
// bytes and that successfully decoded frames round-trip through
// WriteFrame/ReadFrame.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(Frame{StreamID: 2, Source: 7, Records: telemetry.Batch(seedRecords())}); err != nil {
		f.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			frame, err := fr.ReadFrame()
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return
				}
				return // corrupt input is fine, panics are not
			}
			var out bytes.Buffer
			w := NewFrameWriter(&out)
			if err := w.WriteFrame(frame); err != nil {
				t.Fatalf("re-encode of decoded frame: %v", err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			got, err := NewFrameReader(bytes.NewReader(out.Bytes())).ReadFrame()
			if err != nil {
				t.Fatalf("decode of re-encoded frame: %v", err)
			}
			if got.StreamID != frame.StreamID || got.Source != frame.Source || len(got.Records) != len(frame.Records) {
				t.Fatalf("frame round-trip mismatch: %+v vs %+v", got, frame)
			}
		}
	})
}

// FuzzDecodeCompressedFrame checks that the flate-compressed columnar
// frame path never panics on arbitrary byte streams, that decoded
// compressed frames round-trip through a compressing writer, and that
// DecompressFrames agrees with the reader: when both accept a stream,
// the rewritten (uncompressed) stream decodes to records with identical
// v1 encodings.
func FuzzDecodeCompressedFrame(f *testing.F) {
	seed := func(batch telemetry.Batch) {
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		fw.SetColumnar(true)
		fw.SetCompression(true)
		if err := fw.WriteFrame(Frame{StreamID: 1, Source: 3, Records: batch}); err != nil {
			f.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	for _, rec := range seedRecords() {
		seed(telemetry.Batch{rec})
	}
	seed(telemetry.Batch(seedRecords()))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 16, 0, 0, 0, 1, 0, 0, 0, 3, 0xFF, 0xFF, 0xFF, 0xFD, 4, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		encodeAll := func(batch telemetry.Batch) []byte {
			var out []byte
			var err error
			for _, rec := range batch {
				out, err = EncodeRecord(out, rec)
				if err != nil {
					t.Fatalf("decoded record does not re-encode: %v", err)
				}
			}
			return out
		}
		fr := NewFrameReader(bytes.NewReader(data))
		var frames []Frame
		cleanEOF := false
		for {
			frame, err := fr.ReadFrame()
			if err != nil {
				cleanEOF = err == io.EOF
				break // corrupt input is fine, panics are not
			}
			frames = append(frames, frame)

			// Round-trip through a compressing writer.
			var out bytes.Buffer
			w := NewFrameWriter(&out)
			w.SetColumnar(true)
			w.SetCompression(true)
			if err := w.WriteFrame(frame); err != nil {
				t.Fatalf("re-encode of decoded frame: %v", err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			got, err := NewFrameReader(bytes.NewReader(out.Bytes())).ReadFrame()
			if err != nil {
				t.Fatalf("decode of compressed re-encoding: %v", err)
			}
			if got.StreamID != frame.StreamID || got.Source != frame.Source {
				t.Fatalf("frame header round-trip mismatch: %+v vs %+v", got, frame)
			}
			if !bytes.Equal(encodeAll(got.Records), encodeAll(frame.Records)) {
				t.Fatal("compressed round-trip changed the records")
			}
		}

		// Differential: the downgrade rewriter must agree with the reader
		// on any stream the reader fully accepts.
		plain, derr := DecompressFrames(data)
		if !cleanEOF {
			return
		}
		if derr != nil {
			t.Fatalf("reader accepted the stream but DecompressFrames rejected it: %v", derr)
		}
		pr := NewFrameReader(bytes.NewReader(plain))
		for i := 0; ; i++ {
			frame, err := pr.ReadFrame()
			if err == io.EOF {
				if i != len(frames) {
					t.Fatalf("decompressed stream has %d frames, original %d", i, len(frames))
				}
				return
			}
			if err != nil {
				t.Fatalf("decompressed stream frame %d: %v", i, err)
			}
			if i >= len(frames) {
				t.Fatalf("decompressed stream has more frames than original %d", len(frames))
			}
			// The rewrite must be record-stable, frame by frame.
			if !bytes.Equal(encodeAll(frame.Records), encodeAll(frames[i].Records)) {
				t.Fatalf("frame %d: decompressed records differ from original", i)
			}
		}
	})
}

// FuzzDecodeColumnarBatch checks that the v2 columnar decoder never
// panics on arbitrary payloads and that every successfully decoded
// batch round-trips: re-encoding it columnar and decoding again yields
// records with identical v1 encodings.
func FuzzDecodeColumnarBatch(f *testing.F) {
	// Seeds: one payload per section type plus a mixed frame, as the
	// encoder produces them (the payload is the frame body after the
	// 12-byte header).
	seed := func(batch telemetry.Batch) {
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		fw.SetColumnar(true)
		if err := fw.WriteFrame(Frame{StreamID: 1, Records: batch}); err != nil {
			f.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes()[16:]) // strip 4B length + 12B frame header
	}
	for _, rec := range seedRecords() {
		seed(telemetry.Batch{rec})
	}
	seed(telemetry.Batch(seedRecords()))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewColumnarDecoder()
		var out telemetry.Batch
		if err := dec.DecodeBatch(data, &out); err != nil {
			return // corrupt input is fine, panics are not
		}
		var first []byte
		var err error
		for _, rec := range out {
			first, err = EncodeRecord(first, rec)
			if err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
		}
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		fw.SetColumnar(true)
		if err := fw.WriteFrame(Frame{StreamID: 1, Records: out}); err != nil {
			t.Fatalf("re-encode of decoded batch: %v", err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewFrameReader(bytes.NewReader(buf.Bytes())).ReadFrame()
		if err != nil {
			t.Fatalf("decode of re-encoded batch: %v", err)
		}
		var second []byte
		for _, rec := range got.Records {
			second, err = EncodeRecord(second, rec)
			if err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("columnar round-trip not stable:\n%x\n%x", first, second)
		}
	})
}

// FuzzDecodeColumnarVsRows differentially fuzzes the two v2 decoders:
// for any payload, the SoA decoder (DecodeColumnar + AppendRows) must
// accept exactly the inputs the row-materializing decoder accepts and
// produce records with identical v1 encodings — the byte-level
// foundation under the columnar execution path's parity guarantee.
func FuzzDecodeColumnarVsRows(f *testing.F) {
	seed := func(batch telemetry.Batch) {
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		fw.SetColumnar(true)
		if err := fw.WriteFrame(Frame{StreamID: 1, Records: batch}); err != nil {
			f.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes()[16:])
	}
	for _, rec := range seedRecords() {
		seed(telemetry.Batch{rec})
	}
	seed(telemetry.Batch(seedRecords()))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var rows telemetry.Batch
		rowErr := NewColumnarDecoder().DecodeBatch(data, &rows)
		var cb ColumnarBatch
		colErr := NewColumnarDecoder().DecodeColumnar(data, &cb)
		if (rowErr == nil) != (colErr == nil) {
			t.Fatalf("decoder disagreement: rows err=%v, columnar err=%v", rowErr, colErr)
		}
		if rowErr != nil {
			return
		}
		var fromCols telemetry.Batch
		cb.AppendRows(&fromCols)
		if cb.Records() != len(rows) || len(fromCols) != len(rows) {
			t.Fatalf("record counts differ: rows %d, columnar %d (materialized %d)",
				len(rows), cb.Records(), len(fromCols))
		}
		var a, b []byte
		var err error
		for i := range rows {
			if a, err = EncodeRecord(a, rows[i]); err != nil {
				t.Fatalf("row record does not re-encode: %v", err)
			}
			if b, err = EncodeRecord(b, fromCols[i]); err != nil {
				t.Fatalf("columnar record does not re-encode: %v", err)
			}
			if rows[i].WireSize != fromCols[i].WireSize {
				t.Fatalf("record %d wire size: rows %d vs columnar %d", i, rows[i].WireSize, fromCols[i].WireSize)
			}
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("decoders disagree:\n%x\n%x", a, b)
		}
	})
}
