package workload

import (
	"jarvis/internal/wire"
)

// Columnar (SoA) generation: the agent-side pipeline can consume arrival
// waves as wire.ColumnarBatch sections directly, so the generators offer
// NextWindowCols next to NextWindow. Both draw from the same RNG stream
// in the same order and advance the same event-time cursor, so a
// generator produces identical traces whichever form is asked for —
// NextWindowCols emits exactly the records NextWindow would, just as
// columns.
//
// The emitted columns live in generator-owned arenas that the next
// NextWindowCols call overwrites: consume (process, encode or copy) the
// section before generating again. Windows is emitted all-zero, like the
// unassigned Record.Window of the row path.

// pingArena is PingGen's reusable column storage.
type pingArena struct {
	times, wins []int64
	cols        wire.PingCols
}

// NextWindowCols emits all probes with event time in [cur, cur+durMicros)
// as one SoA section appended to cb. Trace-identical to NextWindow.
func (g *PingGen) NextWindowCols(durMicros int64, cb *wire.ColumnarBatch) {
	a := &g.arena
	a.times, a.wins = a.times[:0], a.wins[:0]
	c := &a.cols
	c.TS = c.TS[:0]
	c.SrcIP, c.SrcCluster = c.SrcIP[:0], c.SrcCluster[:0]
	c.DstIP, c.DstCluster = c.DstIP[:0], c.DstCluster[:0]
	c.RTT, c.Err = c.RTT[:0], c.Err[:0]

	end := g.next + durMicros
	for g.next < end {
		peer := g.pickPeer()
		dst := g.PeerIP(peer)
		// Same RNG draw order as one(): RTT first, then the error roll.
		rtt := g.rtt(peer)
		var errc uint32
		if g.rng.Float64() < g.cfg.ErrRate {
			errc = 1 + uint32(g.rng.IntN(4))
		}
		a.times = append(a.times, g.next)
		a.wins = append(a.wins, 0)
		c.TS = append(c.TS, g.next)
		c.SrcIP = append(c.SrcIP, g.cfg.SrcIP)
		c.SrcCluster = append(c.SrcCluster, g.cfg.SrcIP>>16)
		c.DstIP = append(c.DstIP, dst)
		c.DstCluster = append(c.DstCluster, dst>>16)
		c.RTT = append(c.RTT, rtt)
		c.Err = append(c.Err, errc)
		g.next += g.gap()
	}
	if len(a.times) == 0 {
		return
	}
	cb.Secs = append(cb.Secs, wire.ColSec{
		Tag: wire.TagPingProbe, Times: a.times, Windows: a.wins, Ping: c,
	})
}

// spanArena is SpanGen's reusable column storage.
type spanArena struct {
	times, wins []int64
	cols        wire.JobCols
}

// NextWindowCols emits all spans with event time in [cur, cur+durMicros)
// as one SoA section appended to cb. Trace-identical to NextWindow.
func (g *SpanGen) NextWindowCols(durMicros int64, cb *wire.ColumnarBatch) {
	a := &g.arena
	a.times, a.wins = a.times[:0], a.wins[:0]
	c := &a.cols
	c.TS = c.TS[:0]
	c.Tenant, c.StatName = c.Tenant[:0], c.StatName[:0]
	c.Stat, c.Bucket = c.Stat[:0], c.Bucket[:0]

	end := g.next + durMicros
	for g.next < end {
		ts, svc, op, dur := g.oneSpan()
		a.times = append(a.times, ts)
		a.wins = append(a.wins, 0)
		c.TS = append(c.TS, ts)
		c.Tenant = append(c.Tenant, svc)
		c.StatName = append(c.StatName, op)
		c.Stat = append(c.Stat, dur)
		c.Bucket = append(c.Bucket, 0)
	}
	if len(a.times) == 0 {
		return
	}
	cb.Secs = append(cb.Secs, wire.ColSec{
		Tag: wire.TagJobStats, Times: a.times, Windows: a.wins, Job: c,
	})
}

// logArena is LogGen's reusable column storage.
type logArena struct {
	times, wins []int64
	cols        wire.LogCols
}

// NextWindowCols emits all lines with event time in [cur, cur+durMicros)
// as one SoA section appended to cb. Trace-identical to NextWindow (the
// line strings themselves are freshly built either way).
func (g *LogGen) NextWindowCols(durMicros int64, cb *wire.ColumnarBatch) {
	a := &g.arena
	a.times, a.wins = a.times[:0], a.wins[:0]
	c := &a.cols
	c.TS, c.Raw = c.TS[:0], c.Raw[:0]

	end := g.next + durMicros
	for g.next < end {
		ts, line := g.oneLine()
		a.times = append(a.times, ts)
		a.wins = append(a.wins, 0)
		c.TS = append(c.TS, ts)
		c.Raw = append(c.Raw, line)
	}
	if len(a.times) == 0 {
		return
	}
	cb.Secs = append(cb.Secs, wire.ColSec{
		Tag: wire.TagLogLine, Times: a.times, Windows: a.wins, Log: c,
	})
}
