package workload

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"jarvis/internal/telemetry"
)

// Paper constants for the LogAnalytics workload (§VI-A): guided by Chi's
// report of 10s of PB/day across 200 K nodes, each node generates
// 0.62 MBps = 4.96 Mbps of text logs, scaled 10× for experiments.
const (
	LogMbps1x  = 4.96
	LogMbps10x = 49.6
)

// LogConfig configures a LogAnalytics text-log generator.
type LogConfig struct {
	Seed uint64
	// Tenants is the number of distinct tenant names.
	Tenants int
	// MatchRate is the fraction of lines containing one of the query's
	// patterns (tenant/job/cpu/memory); the rest are unrelated chatter
	// filtered out by the pattern-match Filter.
	MatchRate float64
	// FirstTenant offsets the generated tenant names (tenant-%03d starting
	// here), so several generators can emit disjoint tenant populations —
	// one per agent when a test needs per-agent tenancy.
	FirstTenant int
	// StartMicros and IntervalMicros pace event time like PingConfig.
	StartMicros    int64
	IntervalMicros int64
	// NextGap, when set, replaces the fixed IntervalMicros pacing (see
	// PingConfig.NextGap).
	NextGap func() int64
	// TenantPick, when set, replaces uniform tenant selection on
	// matching lines: it returns the tenant index out of n (hot-key
	// skew). Out-of-range picks are clamped into [0, n).
	TenantPick func(n int) int
}

// DefaultLogConfig matches the evaluation setup: mostly matching lines
// (the query's filter-out rate is low, which is why Filter-Src stays
// network bound in Fig. 7(c)).
func DefaultLogConfig(seed uint64) LogConfig {
	return LogConfig{
		Seed:           seed,
		Tenants:        64,
		MatchRate:      0.9,
		StartMicros:    0,
		IntervalMicros: int64(1e6 / RecordsPerSec(LogMbps10x, AvgLogLineBytes)),
	}
}

// AvgLogLineBytes is the approximate average emitted line length, used to
// convert between line rates and Mbps.
const AvgLogLineBytes = 130

// LogGen generates deterministic LogAnalytics lines.
type LogGen struct {
	cfg     LogConfig
	rng     *rand.Rand
	next    int64
	tenants []string
	arena   logArena
}

// NewLogGen builds a generator with a fixed tenant population.
func NewLogGen(cfg LogConfig) *LogGen {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 64
	}
	if cfg.IntervalMicros <= 0 {
		cfg.IntervalMicros = 1
	}
	g := &LogGen{
		cfg:  cfg,
		rng:  rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xDA442D24)),
		next: cfg.StartMicros,
	}
	g.tenants = make([]string, cfg.Tenants)
	for i := range g.tenants {
		g.tenants[i] = fmt.Sprintf("tenant-%03d", cfg.FirstTenant+i)
	}
	return g
}

// Tenants returns the tenant population (ground truth for tests).
func (g *LogGen) Tenants() []string { return g.tenants }

// Next emits the next n log records.
func (g *LogGen) Next(n int) telemetry.Batch {
	out := make(telemetry.Batch, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.one())
	}
	return out
}

// NextWindow emits all lines with event time in [cur, cur+durMicros).
func (g *LogGen) NextWindow(durMicros int64) telemetry.Batch {
	end := g.next + durMicros
	var out telemetry.Batch
	for g.next < end {
		out = append(out, g.one())
	}
	return out
}

func (g *LogGen) one() telemetry.Record {
	ts, line := g.oneLine()
	return telemetry.NewLogRecord(ts, line)
}

// oneLine draws the next line without building the record (shared by the
// row and columnar emitters).
func (g *LogGen) oneLine() (int64, string) {
	ts := g.next
	g.next += g.gap()
	var line string
	if g.rng.Float64() < g.cfg.MatchRate {
		tenant := g.tenants[g.pickTenant()]
		// Zipf-ish job time: mostly short, occasionally long jobs.
		jobMs := int(g.rng.ExpFloat64() * 40)
		cpu := g.rng.Float64() * 100
		mem := g.rng.Float64() * 100
		// Mixed case and padding exercise the query's trim+lowercase Map.
		line = fmt.Sprintf("  Tenant Name=%s, Job Running Time=%d, CPU Util=%.1f, Memory Util=%.1f  ",
			tenant, jobMs, cpu, mem)
	} else {
		line = fmt.Sprintf("kernel: eth0 link state change seq=%d flags=0x%x",
			g.rng.Int32(), g.rng.Int32())
	}
	// Pad to keep average line size near AvgLogLineBytes so Mbps
	// accounting matches the configured rate.
	if pad := AvgLogLineBytes - len(line) - 10; pad > 0 {
		line += " #" + strings.Repeat("x", pad)
	}
	return ts, line
}

// gap returns the event-time advance to the next line.
func (g *LogGen) gap() int64 {
	if g.cfg.NextGap != nil {
		if d := g.cfg.NextGap(); d > 0 {
			return d
		}
		return 1
	}
	return g.cfg.IntervalMicros
}

// pickTenant selects the tenant of a matching line: the configured
// hook (hot-key skew) or the default uniform draw.
func (g *LogGen) pickTenant() int {
	if g.cfg.TenantPick != nil {
		i := g.cfg.TenantPick(len(g.tenants))
		if i < 0 || i >= len(g.tenants) {
			i = 0
		}
		return i
	}
	return g.rng.IntN(len(g.tenants))
}

// SkipWindow advances event time by durMicros without emitting records
// (see PingGen.SkipWindow).
func (g *LogGen) SkipWindow(durMicros int64) { g.next += durMicros }

// Patterns are the substrings the LogAnalytics query greps for
// (Listing 3); matching is done on the lowercased line.
var Patterns = []string{"tenant name", "job running time", "cpu util", "memory util"}

// MatchesPatterns reports whether a (lowercased) line contains any query
// pattern.
func MatchesPatterns(line string) bool {
	for _, p := range Patterns {
		if strings.Contains(line, p) {
			return true
		}
	}
	return false
}
