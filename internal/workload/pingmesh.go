// Package workload synthesizes the two monitoring datasets the paper
// evaluates on: Pingmesh server-to-server latency probes and LogAnalytics
// text logs. The paper used production traces we do not have; these
// generators reproduce the marginals the paper reports (record layout and
// size, data rates, 14% filter-out rate, sparse high-latency anomalies,
// skewed per-node rates) so the same code paths are exercised.
package workload

import (
	"math"
	"math/rand/v2"

	"jarvis/internal/telemetry"
)

// Paper constants (§II-B, §VI-A).
const (
	// DefaultPeers is the number of peers each server probes.
	DefaultPeers = 20000
	// DefaultProbeIntervalSec is the probing interval in seconds.
	DefaultProbeIntervalSec = 5
	// PingmeshMbps1x is the unscaled per-node data rate. 20 K probes of
	// 86 B every 5 s is 2.75 Mbps; the paper reports 2.62 Mbps from the
	// production trace and we adopt the paper's figure.
	PingmeshMbps1x = 2.62
	// PingmeshMbps10x is the 10×-scaled rate used in most experiments.
	PingmeshMbps10x = 26.2
	// AlertThresholdMicros is the probe-latency alert threshold (5 ms).
	AlertThresholdMicros = 5000
)

// RecordsPerSec converts a data rate in Mbps into records per second for a
// fixed record size in bytes.
func RecordsPerSec(mbps float64, recordBytes int) float64 {
	return mbps * 1e6 / 8 / float64(recordBytes)
}

// MbpsOf converts a record rate back to Mbps.
func MbpsOf(recPerSec float64, recordBytes int) float64 {
	return recPerSec * float64(recordBytes) * 8 / 1e6
}

// PingConfig configures a Pingmesh trace generator for one source server.
type PingConfig struct {
	// Seed makes the trace deterministic.
	Seed uint64
	// SrcIP is the probing server's address.
	SrcIP uint32
	// Peers is the number of destination servers probed (round-robin).
	Peers int
	// ErrRate is the fraction of probes with a nonzero error code. The
	// S2SProbe filter keeps ErrCode == 0, so ErrRate is the filter-out
	// rate (paper: 14%).
	ErrRate float64
	// BaseRTTMicros is the median healthy round-trip time.
	BaseRTTMicros float64
	// SigmaLog is the σ of the lognormal RTT noise.
	SigmaLog float64
	// AnomalousPairFrac is the fraction of (src,dst) pairs currently
	// affected by a network issue; their probes draw spiked latencies
	// above the 5 ms alert threshold. The paper notes such data is
	// sparse, which is what makes sampling lossy (Fig. 9).
	AnomalousPairFrac float64
	// SpikeRTTMicros is the mean latency for anomalous pairs.
	SpikeRTTMicros float64
	// StartMicros is the event time of the first probe.
	StartMicros int64
	// IntervalMicros is the event-time spacing between consecutive probes
	// emitted by this node (derived from the target rate).
	IntervalMicros int64
	// NextGap, when set, replaces the fixed IntervalMicros pacing: it
	// returns the event-time gap in microseconds to the next probe.
	// Workload specs plug renewal-process samplers (Poisson, Gamma,
	// Weibull inter-arrivals with diurnal modulation) in here; gaps
	// below 1 µs are clamped to 1.
	NextGap func() int64
	// PeerPick, when set, replaces round-robin peer selection: it
	// returns the peer index to probe out of n peers (hot-key skew).
	// Out-of-range picks are clamped into [0, n).
	PeerPick func(n int) int
}

// DefaultPingConfig returns the configuration used throughout the paper's
// evaluation: 14% filter-out rate, 20 K peers, ~0.5 ms healthy RTT and 1%
// anomalous pairs spiking past the 5 ms alert threshold.
func DefaultPingConfig(seed uint64) PingConfig {
	return PingConfig{
		Seed:              seed,
		SrcIP:             0x0A000000 | uint32(seed&0xFFFF) | 1,
		Peers:             DefaultPeers,
		ErrRate:           0.14,
		BaseRTTMicros:     500,
		SigmaLog:          0.35,
		AnomalousPairFrac: 0.01,
		SpikeRTTMicros:    8000,
		StartMicros:       0,
		IntervalMicros:    int64(1e6 / RecordsPerSec(PingmeshMbps10x, telemetry.PingProbeWireSize)),
	}
}

// PingGen generates a deterministic Pingmesh probe stream for one server.
type PingGen struct {
	cfg       PingConfig
	rng       *rand.Rand
	next      int64
	peerIdx   int
	anomalous []bool // per peer: pair currently in a latency anomaly
	arena     pingArena
}

// NewPingGen builds a generator. Anomalous pairs are chosen up front so
// the ground truth is queryable via Anomalous().
func NewPingGen(cfg PingConfig) *PingGen {
	if cfg.Peers <= 0 {
		cfg.Peers = DefaultPeers
	}
	if cfg.IntervalMicros <= 0 {
		cfg.IntervalMicros = 1
	}
	g := &PingGen{
		cfg:       cfg,
		rng:       rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9E3779B97F4A7C15)),
		next:      cfg.StartMicros,
		anomalous: make([]bool, cfg.Peers),
	}
	for i := range g.anomalous {
		if g.rng.Float64() < cfg.AnomalousPairFrac {
			g.anomalous[i] = true
		}
	}
	return g
}

// PeerIP returns the destination address of peer i.
func (g *PingGen) PeerIP(i int) uint32 {
	return 0x0B000000 + uint32(i)
}

// Anomalous reports whether the pair (src, peer i) is in an anomaly,
// i.e. its probes exceed the alert threshold. Ground truth for Fig. 9.
func (g *PingGen) Anomalous(i int) bool { return g.anomalous[i%len(g.anomalous)] }

// AnomalousCount returns the number of anomalous pairs.
func (g *PingGen) AnomalousCount() int {
	n := 0
	for _, a := range g.anomalous {
		if a {
			n++
		}
	}
	return n
}

// Next emits the next n probe records with monotonically increasing event
// times.
func (g *PingGen) Next(n int) telemetry.Batch {
	out := make(telemetry.Batch, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.one())
	}
	return out
}

// NextWindow emits all probes whose event time falls in
// [start, start+durMicros).
func (g *PingGen) NextWindow(durMicros int64) telemetry.Batch {
	end := g.next + durMicros
	var out telemetry.Batch
	for g.next < end {
		out = append(out, g.one())
	}
	return out
}

func (g *PingGen) one() telemetry.Record {
	peer := g.pickPeer()
	p := &telemetry.PingProbe{
		Timestamp:  g.next,
		SrcIP:      g.cfg.SrcIP,
		SrcCluster: g.cfg.SrcIP >> 16,
		DstIP:      g.PeerIP(peer),
		DstCluster: g.PeerIP(peer) >> 16,
		RTTMicros:  g.rtt(peer),
	}
	if g.rng.Float64() < g.cfg.ErrRate {
		p.ErrCode = 1 + uint32(g.rng.IntN(4))
	}
	g.next += g.gap()
	return telemetry.NewProbeRecord(p)
}

// pickPeer selects the next probed peer: the configured hook (hot-key
// skew) or the default round-robin sweep.
func (g *PingGen) pickPeer() int {
	if g.cfg.PeerPick != nil {
		p := g.cfg.PeerPick(g.cfg.Peers)
		if p < 0 || p >= g.cfg.Peers {
			p = 0
		}
		return p
	}
	peer := g.peerIdx
	g.peerIdx = (g.peerIdx + 1) % g.cfg.Peers
	return peer
}

// gap returns the event-time advance to the next probe.
func (g *PingGen) gap() int64 {
	if g.cfg.NextGap != nil {
		if d := g.cfg.NextGap(); d > 0 {
			return d
		}
		return 1
	}
	return g.cfg.IntervalMicros
}

// SkipWindow advances event time by durMicros without emitting records:
// a churned-out node's clock keeps pace with the cluster, so its stream
// resumes at current event time when it rejoins.
func (g *PingGen) SkipWindow(durMicros int64) { g.next += durMicros }

func (g *PingGen) rtt(peer int) uint32 {
	mean := g.cfg.BaseRTTMicros
	if g.anomalous[peer] {
		mean = g.cfg.SpikeRTTMicros
	}
	// Lognormal noise around the mean keeps RTTs positive and
	// right-skewed like real latency distributions.
	v := mean * math.Exp(g.rng.NormFloat64()*g.cfg.SigmaLog)
	if v < 1 {
		v = 1
	}
	if v > math.MaxUint32 {
		v = math.MaxUint32
	}
	return uint32(v)
}

// SkewedNodeRates reproduces the paper's observation that per-node data
// rates vary widely ("58% of the data source nodes generate 50% or lower
// of the highest rate"): it returns n multipliers in (0,1] whose
// distribution satisfies that property, deterministically from seed.
func SkewedNodeRates(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	out := make([]float64, n)
	for i := range out {
		// 58% of nodes uniform in (0.1, 0.5], the rest in (0.5, 1.0].
		if rng.Float64() < 0.58 {
			out[i] = 0.1 + rng.Float64()*0.4
		} else {
			out[i] = 0.5 + rng.Float64()*0.5
		}
	}
	return out
}
