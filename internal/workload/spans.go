package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"jarvis/internal/telemetry"
)

// Distributed-trace span aggregation: the fourth canonical workload.
// Each record is one completed span — (service, operation, duration) —
// reusing the JobStats record shape (Tenant = service, StatName =
// operation, Stat = duration in milliseconds, Bucket = 0) so spans ride
// the existing TagJobStats wire sections with zero codec changes. The
// key space is deliberately high-cardinality (services × operations,
// Zipf-skewed) to stress GroupAgg hash pressure in ways the 64-tenant
// LogAnalytics workload does not.
const (
	// SpanMbps10x is the default per-node span rate used in experiments,
	// chosen between the Pingmesh and LogAnalytics rates.
	SpanMbps10x = 18.7
	// AvgSpanBytes approximates the serialized span size: two short
	// interned strings plus the JobStats numeric envelope.
	AvgSpanBytes = 50
	// SpanHealthOp is the operation name of health-check spans. They are
	// operationally uninteresting and the TraceSpanAgg query filters
	// them out, giving the workload a natural filter-out rate.
	SpanHealthOp = "healthz"
)

// SpanConfig configures a span-stream generator for one node.
type SpanConfig struct {
	Seed uint64
	// Services is the number of distinct service names emitted.
	Services int
	// OpsPerService is the number of operations per service; the grouped
	// key cardinality is Services × OpsPerService.
	OpsPerService int
	// ZipfS is the Zipf exponent of the (service, operation) popularity
	// skew; 0 is uniform.
	ZipfS float64
	// HealthFrac is the fraction of spans that are health checks
	// (operation SpanHealthOp), dropped by the query's filter.
	HealthFrac float64
	// BaseMillis is the median duration of a healthy operation.
	BaseMillis float64
	// SigmaLog is the σ of the lognormal duration noise.
	SigmaLog float64
	// SlowOpFrac is the fraction of (service, operation) keys that are
	// persistently slow; their durations scale by SlowFactor. Ground
	// truth for latency-regression queries.
	SlowOpFrac float64
	// SlowFactor multiplies BaseMillis for slow keys.
	SlowFactor float64
	// StartMicros and IntervalMicros pace event time like PingConfig.
	StartMicros    int64
	IntervalMicros int64
	// NextGap, when set, replaces the fixed IntervalMicros pacing (see
	// PingConfig.NextGap).
	NextGap func() int64
	// RankPick, when set, replaces the built-in Zipf draw: it returns
	// the popularity rank (out of n keys) of the next span's
	// (service, operation) key. Out-of-range picks are clamped into
	// [0, n).
	RankPick func(n int) int
}

// DefaultSpanConfig returns the canonical setup: 2048 grouped keys with
// web-like skew, 8% health checks and 2% persistently slow operations.
func DefaultSpanConfig(seed uint64) SpanConfig {
	return SpanConfig{
		Seed:           seed,
		Services:       32,
		OpsPerService:  64,
		ZipfS:          1.1,
		HealthFrac:     0.08,
		BaseMillis:     12,
		SigmaLog:       0.6,
		SlowOpFrac:     0.02,
		SlowFactor:     20,
		StartMicros:    0,
		IntervalMicros: int64(1e6 / RecordsPerSec(SpanMbps10x, AvgSpanBytes)),
	}
}

// SpanGen generates a deterministic span stream for one node.
type SpanGen struct {
	cfg      SpanConfig
	rng      *rand.Rand
	next     int64
	zipf     *Zipf
	services []string
	ops      []string // indexed by rank: rank r belongs to services[r/OpsPerService]
	slow     []bool   // per rank: key is persistently slow
	arena    spanArena
}

// NewSpanGen builds a generator. Name tables and the slow-key set are
// precomputed so per-span work is draws plus table lookups.
func NewSpanGen(cfg SpanConfig) *SpanGen {
	if cfg.Services <= 0 {
		cfg.Services = 32
	}
	if cfg.OpsPerService <= 0 {
		cfg.OpsPerService = 64
	}
	if cfg.IntervalMicros <= 0 {
		cfg.IntervalMicros = 1
	}
	if cfg.BaseMillis <= 0 {
		cfg.BaseMillis = 12
	}
	if cfg.SlowFactor <= 0 {
		cfg.SlowFactor = 1
	}
	keys := cfg.Services * cfg.OpsPerService
	g := &SpanGen{
		cfg:      cfg,
		rng:      rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5B3A9D44C27F11E7)),
		next:     cfg.StartMicros,
		zipf:     NewZipf(cfg.ZipfS, keys),
		services: make([]string, cfg.Services),
		ops:      make([]string, keys),
		slow:     make([]bool, keys),
	}
	for i := range g.services {
		g.services[i] = fmt.Sprintf("svc-%03d", i)
	}
	for r := range g.ops {
		g.ops[r] = fmt.Sprintf("op-%04d", r%cfg.OpsPerService)
	}
	for r := range g.slow {
		if g.rng.Float64() < cfg.SlowOpFrac {
			g.slow[r] = true
		}
	}
	return g
}

// Keys returns the grouped key cardinality (services × operations).
func (g *SpanGen) Keys() int { return len(g.ops) }

// Slow reports whether popularity rank r is a persistently slow key:
// ground truth for latency-regression assertions.
func (g *SpanGen) Slow(r int) bool { return g.slow[r%len(g.slow)] }

// SlowCount returns the number of persistently slow keys.
func (g *SpanGen) SlowCount() int {
	n := 0
	for _, s := range g.slow {
		if s {
			n++
		}
	}
	return n
}

// Next emits the next n span records.
func (g *SpanGen) Next(n int) telemetry.Batch {
	out := make(telemetry.Batch, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.one())
	}
	return out
}

// NextWindow emits all spans with event time in [cur, cur+durMicros).
func (g *SpanGen) NextWindow(durMicros int64) telemetry.Batch {
	end := g.next + durMicros
	var out telemetry.Batch
	for g.next < end {
		out = append(out, g.one())
	}
	return out
}

func (g *SpanGen) one() telemetry.Record {
	ts, svc, op, dur := g.oneSpan()
	j := &telemetry.JobStats{Timestamp: ts, Tenant: svc, StatName: op, Stat: dur}
	return telemetry.Record{Time: ts, WireSize: j.JobStatsWireSize(), Data: j}
}

// oneSpan draws the next span without building the record (shared by the
// row and columnar emitters). Draw order: health roll, key rank,
// duration noise — fixed so both paths produce identical traces.
func (g *SpanGen) oneSpan() (ts int64, svc, op string, durMs float64) {
	ts = g.next
	g.next += g.gap()
	health := g.rng.Float64() < g.cfg.HealthFrac
	rank := g.pickRank()
	mean := g.cfg.BaseMillis
	if g.slow[rank] {
		mean *= g.cfg.SlowFactor
	}
	durMs = mean * math.Exp(g.rng.NormFloat64()*g.cfg.SigmaLog)
	if durMs < 0.001 {
		durMs = 0.001
	}
	svc = g.services[rank/g.cfg.OpsPerService]
	op = g.ops[rank]
	if health {
		op = SpanHealthOp
	}
	return ts, svc, op, durMs
}

// pickRank selects the next span's key rank: the configured hook or the
// built-in Zipf draw.
func (g *SpanGen) pickRank() int {
	if g.cfg.RankPick != nil {
		r := g.cfg.RankPick(len(g.ops))
		if r < 0 || r >= len(g.ops) {
			r = 0
		}
		return r
	}
	return g.zipf.Rank(g.rng.Float64())
}

// gap returns the event-time advance to the next span.
func (g *SpanGen) gap() int64 {
	if g.cfg.NextGap != nil {
		if d := g.cfg.NextGap(); d > 0 {
			return d
		}
		return 1
	}
	return g.cfg.IntervalMicros
}

// SkipWindow advances event time by durMicros without emitting records
// (see PingGen.SkipWindow).
func (g *SpanGen) SkipWindow(durMicros int64) { g.next += durMicros }
