package workload

import (
	"math"
	"testing"

	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

func TestSpanGenDeterministic(t *testing.T) {
	a := NewSpanGen(DefaultSpanConfig(7))
	b := NewSpanGen(DefaultSpanConfig(7))
	ra, rb := a.Next(500), b.Next(500)
	for i := range ra {
		ja, jb := ra[i].Data.(*telemetry.JobStats), rb[i].Data.(*telemetry.JobStats)
		if *ja != *jb {
			t.Fatalf("record %d differs: %+v vs %+v", i, ja, jb)
		}
	}
	c := NewSpanGen(DefaultSpanConfig(8))
	rc := c.Next(500)
	same := 0
	for i := range ra {
		if *ra[i].Data.(*telemetry.JobStats) == *rc[i].Data.(*telemetry.JobStats) {
			same++
		}
	}
	if same == len(ra) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestSpanGenColsParity checks NextWindowCols emits exactly the records
// NextWindow would — the contract the sim's columnar pipelines rely on.
func TestSpanGenColsParity(t *testing.T) {
	row := NewSpanGen(DefaultSpanConfig(11))
	col := NewSpanGen(DefaultSpanConfig(11))
	for w := 0; w < 3; w++ {
		recs := row.NextWindow(1_000_000)
		var cb wire.ColumnarBatch
		col.NextWindowCols(1_000_000, &cb)
		if len(cb.Secs) != 1 {
			t.Fatalf("window %d: got %d sections", w, len(cb.Secs))
		}
		sec := cb.Secs[0]
		if sec.Tag != wire.TagJobStats || sec.N() != len(recs) {
			t.Fatalf("window %d: tag %#x n=%d want n=%d", w, sec.Tag, sec.N(), len(recs))
		}
		for i, r := range recs {
			j := r.Data.(*telemetry.JobStats)
			if sec.Job.TS[i] != j.Timestamp || sec.Job.Tenant[i] != j.Tenant ||
				sec.Job.StatName[i] != j.StatName || sec.Job.Stat[i] != j.Stat ||
				sec.Job.Bucket[i] != 0 {
				t.Fatalf("window %d row %d: columnar %v/%v/%v vs row %+v",
					w, i, sec.Job.Tenant[i], sec.Job.StatName[i], sec.Job.Stat[i], j)
			}
		}
	}
}

func TestSpanGenMarginals(t *testing.T) {
	g := NewSpanGen(DefaultSpanConfig(3))
	recs := g.Next(20000)
	health, slowSum, slowN, fastSum, fastN := 0, 0.0, 0, 0.0, 0
	keys := map[[2]string]int{}
	for _, r := range recs {
		j := r.Data.(*telemetry.JobStats)
		if j.StatName == SpanHealthOp {
			health++
			continue
		}
		keys[[2]string{j.Tenant, j.StatName}]++
		if j.Stat > 100 {
			slowSum, slowN = slowSum+j.Stat, slowN+1
		} else {
			fastSum, fastN = fastSum+j.Stat, fastN+1
		}
	}
	frac := float64(health) / float64(len(recs))
	if math.Abs(frac-0.08) > 0.02 {
		t.Fatalf("health fraction %.3f, want ≈0.08", frac)
	}
	if len(keys) < 100 {
		t.Fatalf("only %d distinct keys; want high cardinality", len(keys))
	}
	if g.SlowCount() == 0 || slowN == 0 {
		t.Fatalf("no slow keys drawn (slowCount=%d slowN=%d)", g.SlowCount(), slowN)
	}
	// Zipf skew: the hottest key should dominate a uniform share.
	max := 0
	for _, n := range keys {
		if n > max {
			max = n
		}
	}
	if uniform := len(recs) / g.Keys(); max < 4*uniform {
		t.Fatalf("hottest key %d records, uniform share %d: no visible skew", max, uniform)
	}
}

func TestSpanGenHooksAndSkip(t *testing.T) {
	cfg := DefaultSpanConfig(5)
	cfg.NextGap = func() int64 { return 250 }
	cfg.RankPick = func(n int) int { return n + 100 } // out of range → clamped to 0
	g := NewSpanGen(cfg)
	recs := g.NextWindow(1000)
	if len(recs) != 4 {
		t.Fatalf("got %d records with 250µs gaps in 1ms, want 4", len(recs))
	}
	for i, r := range recs {
		j := r.Data.(*telemetry.JobStats)
		if j.Timestamp != int64(i)*250 {
			t.Fatalf("record %d ts=%d, want %d", i, j.Timestamp, int64(i)*250)
		}
		if j.Tenant != "svc-000" {
			t.Fatalf("clamped rank should map to svc-000, got %q", j.Tenant)
		}
	}
	g.SkipWindow(5000)
	next := g.NextWindow(250)
	if len(next) != 1 || next[0].Time != 6000 {
		t.Fatalf("after skip got %v, want one record at t=6000", next)
	}
}

func TestZipfSampler(t *testing.T) {
	z := NewZipf(1.0, 100)
	if z.N() != 100 {
		t.Fatalf("N=%d", z.N())
	}
	if r := z.Rank(0); r != 0 {
		t.Fatalf("Rank(0)=%d, want 0", r)
	}
	if r := z.Rank(0.9999999); r != 99 {
		t.Fatalf("Rank(~1)=%d, want 99", r)
	}
	// Monotone: larger u never maps to a smaller rank.
	prev := 0
	for i := 0; i <= 1000; i++ {
		r := z.Rank(float64(i) / 1001)
		if r < prev {
			t.Fatalf("rank not monotone at u=%d/1001: %d < %d", i, r, prev)
		}
		prev = r
	}
	// Uniform exponent: ranks spread evenly.
	u := NewZipf(0, 10)
	if r := u.Rank(0.55); r != 5 {
		t.Fatalf("uniform Rank(0.55)=%d, want 5", r)
	}
}
