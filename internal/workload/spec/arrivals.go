package spec

import (
	"math"
	"math/rand/v2"
	"strings"
)

// Unit-mean renewal samplers: each draw is a positive factor scaling the
// group's base inter-arrival interval, so the configured rate is
// preserved in expectation regardless of process.

// sampler returns the group's inter-arrival factor sampler. The RNG is
// owned by the caller (one per node), keeping draws deterministic per
// node regardless of scheduling.
func (a *Arrival) sampler(rng *rand.Rand) func() float64 {
	if a == nil {
		return func() float64 { return 1 }
	}
	shape := a.Shape
	if shape <= 0 {
		shape = 1
	}
	switch strings.ToLower(a.Process) {
	case "poisson":
		// Exponential gaps — a Poisson arrival process.
		return func() float64 { return rng.ExpFloat64() }
	case "gamma":
		// Gamma(k, 1/k): mean 1, CV 1/√k — burstier than Poisson for
		// k < 1, smoother for k > 1.
		return func() float64 { return gammaSample(rng, shape) / shape }
	case "weibull":
		// Weibull(k) scaled to unit mean: heavy-tailed gaps for k < 1.
		scale := 1 / math.Gamma(1+1/shape)
		return func() float64 {
			u := rng.Float64()
			if u <= 0 {
				u = math.SmallestNonzeroFloat64
			}
			return scale * math.Pow(-math.Log(u), 1/shape)
		}
	case "uniform":
		// Uniform on [0.5, 1.5): mild jitter around the base interval.
		return func() float64 { return 0.5 + rng.Float64() }
	default: // "fixed"
		return func() float64 { return 1 }
	}
}

// gammaSample draws Gamma(shape, 1) via Marsaglia–Tsang squeeze
// (boosted below shape 1), using only the caller's RNG.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
		u := rng.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// modulator returns the diurnal rate-modulation function over virtual
// event time (microseconds since run start): the instantaneous rate
// multiplier, floored at 0.05 so gaps stay bounded.
func (d *Diurnal) modulator(epochMicros int64) func(tMicros int64) float64 {
	if d == nil || d.Amplitude == 0 {
		return func(int64) float64 { return 1 }
	}
	period := float64(d.PeriodEpochs) * float64(epochMicros)
	amp := d.Amplitude
	return func(t int64) float64 {
		m := 1 + amp*math.Sin(2*math.Pi*float64(t)/period)
		if m < 0.05 {
			m = 0.05
		}
		return m
	}
}
