package spec

import (
	"math/rand/v2"

	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// ColGen is the generator contract every workload satisfies: emit one
// virtual window as SoA columns, or skip it entirely (churned-out nodes
// keep event-time pace without emitting).
type ColGen interface {
	NextWindowCols(durMicros int64, cb *wire.ColumnarBatch)
	SkipWindow(durMicros int64)
}

// Node is one compiled agent: a seeded generator plus its activity
// schedule. EmitWindow/Skip must be called for every epoch in order —
// they advance both the generator's event-time cursor and the arrival
// process's modulation phase.
type Node struct {
	// Index is the node's global index across all groups.
	Index int
	// Group and Query identify the population; Query is canonical
	// ("s2s" | "t2t" | "log" | "spans").
	Group string
	Query string
	// Class is the SLO class string ("gold" | "silver" | "best-effort").
	Class string
	// Gen is the node's deterministic generator.
	Gen ColGen
	// Active reports whether the node emits data in the given epoch
	// (join/leave window and churn schedule).
	Active func(epoch int) bool

	cursor *int64 // arrival-modulation phase, shared with the NextGap closure
}

// EmitWindow generates one epoch of columns.
func (n *Node) EmitWindow(durMicros int64, cb *wire.ColumnarBatch) {
	n.Gen.NextWindowCols(durMicros, cb)
}

// Skip advances the node through one quiet epoch, keeping the diurnal
// phase aligned with virtual time.
func (n *Node) Skip(durMicros int64) {
	n.Gen.SkipWindow(durMicros)
	*n.cursor += durMicros
}

// Scenario is a compiled spec: per-node generators under a shared
// virtual-time frame, ready for sim.Cluster.
type Scenario struct {
	Spec        *Spec
	EpochMicros int64
	DrainEpochs int
	Nodes       []Node
	// Queries are the distinct canonical queries in first-use order;
	// the sim runs one SP per entry.
	Queries []string
}

// DefaultSpecPeers bounds the ping workloads' peer fan-out in
// spec-driven runs (overridable via skew.keys): it keeps every peer
// inside the T2TProbe join table and the grouped key space proportionate
// to spec-scale rates, unlike the paper's 20 K-peer default.
const DefaultSpecPeers = 256

// splitmix64 decorrelates derived seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Compile resolves the spec into per-node generators. It is
// deterministic: node seeds derive from the spec seed and the node's
// global index only.
func (s *Spec) Compile() (*Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	epochMicros := s.EpochMillis * 1000
	if epochMicros == 0 {
		epochMicros = 1_000_000
	}
	drain := s.DrainEpochs
	if drain == 0 {
		drain = 11
	}
	sc := &Scenario{Spec: s, EpochMicros: epochMicros, DrainEpochs: drain}
	idx := 0
	seenQ := map[string]bool{}
	for gi := range s.Groups {
		g := &s.Groups[gi]
		q, _ := CanonicalQuery(g.Query)
		if !seenQ[q] {
			seenQ[q] = true
			sc.Queries = append(sc.Queries, q)
		}
		class := g.Class
		if class == "" {
			class = "silver"
		}
		mod := s.groupModulator(g, epochMicros)
		for i := 0; i < g.Nodes; i++ {
			n := s.compileNode(g, q, class, idx, gi, mod, epochMicros)
			sc.Nodes = append(sc.Nodes, n)
			idx++
		}
	}
	return sc, nil
}

// groupModulator folds the group's diurnal curve and any rate_spike
// faults into one rate multiplier over virtual time.
func (s *Spec) groupModulator(g *Group, epochMicros int64) func(tMicros int64) float64 {
	diurnal := g.Diurnal.modulator(epochMicros)
	type spike struct {
		from, until int64 // micros; until 0 = open
		factor      float64
	}
	var spikes []spike
	for i := range s.Faults {
		f := &s.Faults[i]
		if f.Kind != FaultRateSpike || (f.Group != "" && f.Group != g.Name) {
			continue
		}
		sp := spike{from: int64(f.Epoch) * epochMicros, factor: f.Factor}
		if f.UntilEpoch > 0 {
			sp.until = int64(f.UntilEpoch) * epochMicros
		}
		spikes = append(spikes, sp)
	}
	if len(spikes) == 0 {
		return diurnal
	}
	return func(t int64) float64 {
		m := diurnal(t)
		for _, sp := range spikes {
			if t >= sp.from && (sp.until == 0 || t < sp.until) {
				m *= sp.factor
			}
		}
		return m
	}
}

// compileNode builds one node's generator and schedule.
func (s *Spec) compileNode(g *Group, q, class string, idx, groupIdx int, mod func(int64) float64, epochMicros int64) Node {
	nodeSeed := splitmix64(s.Seed ^ uint64(idx)*0xA24BAED4963EE407)
	arrivalRNG := rand.New(rand.NewPCG(nodeSeed, nodeSeed^0x1F83D9ABFB41BD6B))
	skewRNG := rand.New(rand.NewPCG(nodeSeed, nodeSeed^0x5BE0CD19137E2179))
	sample := g.Arrival.sampler(arrivalRNG)

	cursor := new(int64)
	gapper := func(baseMicros float64) func() int64 {
		return func() int64 {
			gap := baseMicros * sample() / mod(*cursor)
			if gap < 1 {
				gap = 1
			}
			if gap > float64(MaxEpochMillis)*1000 {
				gap = float64(MaxEpochMillis) * 1000
			}
			gi := int64(gap)
			*cursor += gi
			return gi
		}
	}
	var zipf *workload.Zipf
	if g.Skew != nil {
		keys := g.Skew.Keys
		if keys == 0 {
			keys = DefaultSpecPeers
		}
		zipf = workload.NewZipf(g.Skew.Exponent, keys)
	}
	pick := func(n int) int { return zipf.Rank(skewRNG.Float64()) }

	var gen ColGen
	switch q {
	case "s2s", "t2t":
		cfg := workload.DefaultPingConfig(nodeSeed)
		cfg.SrcIP = 0x0A000000 + uint32(idx+1)
		cfg.Peers = DefaultSpecPeers
		rate := g.RateMbps
		if rate == 0 {
			rate = workload.PingmeshMbps10x
		}
		cfg.IntervalMicros = interval(rate, telemetry.PingProbeWireSize)
		if zipf != nil {
			cfg.Peers = zipf.N()
			cfg.PeerPick = pick
		}
		cfg.NextGap = gapper(float64(cfg.IntervalMicros))
		gen = workload.NewPingGen(cfg)
	case "log":
		cfg := workload.DefaultLogConfig(nodeSeed)
		rate := g.RateMbps
		if rate == 0 {
			rate = workload.LogMbps10x
		}
		cfg.IntervalMicros = interval(rate, workload.AvgLogLineBytes)
		if zipf != nil {
			cfg.Tenants = zipf.N()
			cfg.TenantPick = pick
		}
		cfg.NextGap = gapper(float64(cfg.IntervalMicros))
		gen = workload.NewLogGen(cfg)
	case "spans":
		cfg := workload.DefaultSpanConfig(nodeSeed)
		rate := g.RateMbps
		if rate == 0 {
			rate = workload.SpanMbps10x
		}
		cfg.IntervalMicros = interval(rate, workload.AvgSpanBytes)
		if g.Skew != nil {
			// Span skew is native: the generator draws ranks from its
			// own Zipf over the (service, operation) space.
			cfg.ZipfS = g.Skew.Exponent
			if g.Skew.Keys > 0 {
				cfg.OpsPerService = (g.Skew.Keys + cfg.Services - 1) / cfg.Services
			}
		}
		cfg.NextGap = gapper(float64(cfg.IntervalMicros))
		gen = workload.NewSpanGen(cfg)
	}

	join, leave, churn := g.JoinEpoch, g.LeaveEpoch, g.Churn
	seed := s.Seed
	active := func(epoch int) bool {
		if epoch < join {
			return false
		}
		if leave > 0 && epoch >= leave {
			return false
		}
		if churn != nil {
			cycle := epoch / churn.PeriodEpochs
			h := splitmix64(seed ^ uint64(idx)*0xD6E8FEB86659FD93 ^ uint64(cycle)*0xCA5A826395121157)
			if float64(h%100000)/100000 < churn.Fraction {
				return false
			}
		}
		return true
	}

	return Node{
		Index: idx, Group: g.Name, Query: q, Class: class,
		Gen: gen, Active: active, cursor: cursor,
	}
}

// interval converts a per-node rate into microseconds per record.
func interval(mbps float64, recBytes int) int64 {
	iv := int64(1e6 / workload.RecordsPerSec(mbps, recBytes))
	if iv < 1 {
		iv = 1
	}
	return iv
}

// ScaleNodes proportionally rescales group sizes so the total is n
// (each non-empty group keeps at least one node). It mutates the spec;
// call before Compile.
func (s *Spec) ScaleNodes(n int) {
	if n <= 0 {
		return
	}
	total := 0
	for i := range s.Groups {
		total += s.Groups[i].Nodes
	}
	if total == 0 || total == n {
		return
	}
	acc := 0
	for i := range s.Groups {
		g := &s.Groups[i]
		scaled := g.Nodes * n / total
		if scaled < 1 {
			scaled = 1
		}
		g.Nodes = scaled
		acc += scaled
	}
	// Put any rounding remainder on the largest group.
	if acc < n {
		big := 0
		for i := range s.Groups {
			if s.Groups[i].Nodes > s.Groups[big].Nodes {
				big = i
			}
		}
		s.Groups[big].Nodes += n - acc
	}
}

// TotalNodes returns the spec's node count across groups.
func (s *Spec) TotalNodes() int {
	total := 0
	for i := range s.Groups {
		total += s.Groups[i].Nodes
	}
	return total
}
