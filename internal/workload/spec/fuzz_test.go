package spec

import (
	"testing"
	"time"
)

// FuzzParseWorkloadSpec asserts the parser's only contract under
// arbitrary input: reject or accept quickly, never panic, never hang,
// and never accept a spec that fails its own validation. Accepted specs
// must also compile (scaled down so the fuzzer cannot buy gigabytes of
// generators with a large node count).
func FuzzParseWorkloadSpec(f *testing.F) {
	seeds := []string{
		sampleSpec,
		``,
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1}]}`,
		// Malformed mixes.
		`{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":-3}]}`,
		`{"epochs": 5, "groups": [{"name":"","query":"log","nodes":1}]}`,
		`{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1},{"name":"a","query":"s2s","nodes":1}]}`,
		// Zero and negative rates.
		`{"epochs": 5, "groups": [{"name":"a","query":"spans","nodes":1,"rate_mbps":0}]}`,
		`{"epochs": 5, "groups": [{"name":"a","query":"spans","nodes":1,"rate_mbps":-0.5}]}`,
		// NaN/Inf modulation: JSON cannot encode NaN, so these exercise
		// the decode error path.
		`{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1,"diurnal":{"period_epochs":2,"amplitude":NaN}}]}`,
		`{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1,"diurnal":{"period_epochs":2,"amplitude":1e999}}]}`,
		// Huge bounds.
		`{"epochs": 99999999999, "groups": [{"name":"a","query":"s2s","nodes":1}]}`,
		`{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1,"skew":{"exponent":1,"keys":999999999}}]}`,
		// Fault timeline abuse.
		`{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1}],"faults":[{"epoch":-1,"kind":"sp_crash"}]}`,
		`{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1}],"faults":[{"epoch":1,"kind":"rate_spike","factor":1e308}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		start := time.Now()
		s, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted specs must satisfy their own invariants and compile.
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted what Validate rejects: %v", err)
		}
		s.ScaleNodes(len(s.Groups)) // one node per group: bounded work
		if _, err := s.Compile(); err != nil {
			t.Fatalf("accepted spec failed to compile: %v", err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("parse+compile took %v", d)
		}
	})
}
