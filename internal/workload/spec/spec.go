// Package spec defines declarative cluster-workload specifications: a
// JSON document (a strict subset of YAML, so specs read naturally either
// way) describing the client mix per tenant and SLO class — arrival
// processes, diurnal rate modulation, hot-key skew, churn schedules —
// plus SP sizing and a fault-injection timeline. A parsed spec compiles
// into per-node columnar generators (workload.PingGen / LogGen /
// SpanGen) that sim.Cluster drives under a shared virtual clock, so
// "gold tenant with diurnal Gamma arrivals and hot-key skew, 800 agents,
// two SP failovers at minute 3" is data, not code.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Hard bounds keeping malformed or adversarial specs (fuzzing, user
// typos) from allocating unbounded memory or spinning the sim forever.
const (
	MaxEpochs      = 1_000_000
	MaxTotalNodes  = 1_000_000
	MaxGroups      = 1024
	MaxFaults      = 4096
	MaxSkewKeys    = 10_000_000
	MaxEpochMillis = 3_600_000
)

// Spec is the root document.
type Spec struct {
	// Name labels the scenario in logs and metrics.
	Name string `json:"name"`
	// Seed makes every run of the spec deterministic; node seeds derive
	// from it.
	Seed uint64 `json:"seed"`
	// Epochs is the number of data-generating epochs.
	Epochs int `json:"epochs"`
	// EpochMillis is the epoch length in virtual milliseconds
	// (default 1000).
	EpochMillis int64 `json:"epoch_millis,omitempty"`
	// DrainEpochs is the number of trailing quiet epochs that flush
	// open windows (default: enough to close a 10 s window, 11).
	DrainEpochs int `json:"drain_epochs,omitempty"`
	// SP sizes the simulated stream processors.
	SP SPParams `json:"sp,omitempty"`
	// Groups are the client populations.
	Groups []Group `json:"groups"`
	// Faults is the injection timeline.
	Faults []Fault `json:"faults,omitempty"`
}

// SPParams sizes the admission controller and checkpoint cadence of
// each simulated SP. Zero values mean "defaults".
type SPParams struct {
	// AdmitRateMbps is the per-tenant admitted-byte refill rate for a
	// weight-1 class. Zero disables admission control.
	AdmitRateMbps float64 `json:"admit_rate_mbps,omitempty"`
	// AdmitBurstKB is the token-bucket capacity (default: 2× the
	// per-epoch refill).
	AdmitBurstKB float64 `json:"admit_burst_kb,omitempty"`
	// MaxDelayedEpochs bounds the delay queue (default 64).
	MaxDelayedEpochs int `json:"max_delayed_epochs,omitempty"`
	// CheckpointEvery snapshots SP state every N applied epochs
	// (default 8).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// Group is one homogeneous client population: N nodes running the same
// query at the same rate under one tenant and SLO class.
type Group struct {
	// Name labels the group; it is also the transport tenant.
	Name string `json:"name"`
	// Query is the canonical query the group's agents run:
	// s2s | t2t | log | spans.
	Query string `json:"query"`
	// Class is the SLO class: gold | silver | best-effort (default
	// silver).
	Class string `json:"class,omitempty"`
	// Nodes is the number of agent nodes in the group.
	Nodes int `json:"nodes"`
	// RateMbps is the per-node data rate (default: the query's
	// canonical 10× rate).
	RateMbps float64 `json:"rate_mbps,omitempty"`
	// Arrival selects the inter-arrival process (default: fixed
	// spacing).
	Arrival *Arrival `json:"arrival,omitempty"`
	// Diurnal modulates the rate sinusoidally over virtual time.
	Diurnal *Diurnal `json:"diurnal,omitempty"`
	// Skew replaces the generator's default key selection with a
	// Zipf-skewed draw (hot peers / hot tenants / hot span keys).
	Skew *Skew `json:"skew,omitempty"`
	// JoinEpoch is the first epoch the group's nodes emit data
	// (staggered arrival); LeaveEpoch, when > 0, is the first epoch
	// they stop.
	JoinEpoch  int `json:"join_epoch,omitempty"`
	LeaveEpoch int `json:"leave_epoch,omitempty"`
	// Churn cycles a deterministic fraction of the group's nodes out of
	// service each period (tenant churn).
	Churn *Churn `json:"churn,omitempty"`
}

// Arrival is a renewal inter-arrival process with unit mean; gaps scale
// the group's base interval.
type Arrival struct {
	// Process: fixed | poisson | gamma | weibull | uniform.
	Process string `json:"process"`
	// Shape is the gamma/weibull shape parameter (unused otherwise;
	// default 1, which degenerates to poisson).
	Shape float64 `json:"shape,omitempty"`
}

// Diurnal modulates a group's instantaneous rate as
// rate(t) = base × (1 + Amplitude·sin(2πt/Period)).
type Diurnal struct {
	// PeriodEpochs is the modulation period in epochs.
	PeriodEpochs int `json:"period_epochs"`
	// Amplitude ∈ [0, 1): peak-to-mean rate swing.
	Amplitude float64 `json:"amplitude"`
}

// Skew selects keys (ping peers, log tenants, span operations) from a
// bounded Zipf distribution instead of the generator's default.
type Skew struct {
	// Exponent is the Zipf s parameter (0 = uniform).
	Exponent float64 `json:"exponent"`
	// Keys overrides the key-space size (peers / tenants); 0 keeps the
	// generator's default.
	Keys int `json:"keys,omitempty"`
}

// Churn cycles nodes out of service: each period of PeriodEpochs, a
// deterministic Fraction of the group's nodes goes quiet for that
// period.
type Churn struct {
	PeriodEpochs int     `json:"period_epochs"`
	Fraction     float64 `json:"fraction"`
}

// Fault kinds.
const (
	// FaultSPCrash crashes the SP serving Query at Epoch; it restores
	// from its latest checkpoint after OutageEpochs (default 1).
	FaultSPCrash = "sp_crash"
	// FaultRateSpike multiplies Group's (or, if Group is empty, every
	// group's) rate by Factor from Epoch until UntilEpoch.
	FaultRateSpike = "rate_spike"
)

// Fault is one timeline entry.
type Fault struct {
	Epoch int    `json:"epoch"`
	Kind  string `json:"kind"`
	// Query targets sp_crash (the SP of that query).
	Query string `json:"query,omitempty"`
	// Group targets rate_spike.
	Group string `json:"group,omitempty"`
	// Factor is the rate multiplier for rate_spike.
	Factor float64 `json:"factor,omitempty"`
	// UntilEpoch ends a rate_spike (0 = end of run).
	UntilEpoch int `json:"until_epoch,omitempty"`
	// OutageEpochs is how long a crashed SP stays down.
	OutageEpochs int `json:"outage_epochs,omitempty"`
}

// CanonicalQuery normalizes a query spelling to its short name, or
// returns false.
func CanonicalQuery(q string) (string, bool) {
	switch strings.ToLower(strings.TrimSpace(q)) {
	case "s2s", "s2sprobe":
		return "s2s", true
	case "t2t", "t2tprobe":
		return "t2t", true
	case "log", "loganalytics":
		return "log", true
	case "spans", "tracespanagg":
		return "spans", true
	}
	return "", false
}

// Parse decodes and validates a spec document. Unknown fields are
// rejected so typos fail loudly; a parse error never panics and the
// input length is the only work bound.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: parse: %w", err)
	}
	// Trailing garbage after the document is an error, not ignored.
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func bad(format string, args ...any) error {
	return fmt.Errorf("spec: "+format, args...)
}

// finite rejects NaN and ±Inf (programmatic construction can produce
// them even though JSON cannot encode them).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks every bound the compiler and sim rely on.
func (s *Spec) Validate() error {
	if s.Epochs <= 0 || s.Epochs > MaxEpochs {
		return bad("epochs %d out of (0, %d]", s.Epochs, MaxEpochs)
	}
	if s.EpochMillis < 0 || s.EpochMillis > MaxEpochMillis {
		return bad("epoch_millis %d out of [0, %d]", s.EpochMillis, MaxEpochMillis)
	}
	if s.DrainEpochs < 0 || s.DrainEpochs > MaxEpochs {
		return bad("drain_epochs %d out of range", s.DrainEpochs)
	}
	if len(s.Groups) == 0 {
		return bad("no groups")
	}
	if len(s.Groups) > MaxGroups {
		return bad("%d groups exceeds %d", len(s.Groups), MaxGroups)
	}
	if len(s.Faults) > MaxFaults {
		return bad("%d faults exceeds %d", len(s.Faults), MaxFaults)
	}
	if !finite(s.SP.AdmitRateMbps) || s.SP.AdmitRateMbps < 0 {
		return bad("sp.admit_rate_mbps %v invalid", s.SP.AdmitRateMbps)
	}
	if !finite(s.SP.AdmitBurstKB) || s.SP.AdmitBurstKB < 0 {
		return bad("sp.admit_burst_kb %v invalid", s.SP.AdmitBurstKB)
	}
	if s.SP.MaxDelayedEpochs < 0 || s.SP.CheckpointEvery < 0 {
		return bad("sp queue/checkpoint sizes must be non-negative")
	}
	total := 0
	seen := map[string]bool{}
	for i := range s.Groups {
		g := &s.Groups[i]
		if err := g.validate(s.Epochs); err != nil {
			return fmt.Errorf("%w (group %d %q)", err, i, g.Name)
		}
		if seen[g.Name] {
			return bad("duplicate group name %q", g.Name)
		}
		seen[g.Name] = true
		total += g.Nodes
	}
	if total > MaxTotalNodes {
		return bad("%d total nodes exceeds %d", total, MaxTotalNodes)
	}
	for i := range s.Faults {
		if err := s.Faults[i].validate(s, seen); err != nil {
			return fmt.Errorf("%w (fault %d)", err, i)
		}
	}
	return nil
}

func (g *Group) validate(epochs int) error {
	if g.Name == "" {
		return bad("group name empty")
	}
	if len(g.Name) > 128 {
		return bad("group name too long")
	}
	if _, ok := CanonicalQuery(g.Query); !ok {
		return bad("unknown query %q", g.Query)
	}
	switch strings.ToLower(g.Class) {
	case "", "gold", "silver", "best-effort", "besteffort", "be":
	default:
		return bad("unknown class %q", g.Class)
	}
	if g.Nodes <= 0 || g.Nodes > MaxTotalNodes {
		return bad("nodes %d out of (0, %d]", g.Nodes, MaxTotalNodes)
	}
	if !finite(g.RateMbps) || g.RateMbps < 0 || g.RateMbps > 1e6 {
		return bad("rate_mbps %v invalid", g.RateMbps)
	}
	if a := g.Arrival; a != nil {
		switch strings.ToLower(a.Process) {
		case "fixed", "poisson", "gamma", "weibull", "uniform":
		default:
			return bad("unknown arrival process %q", a.Process)
		}
		if !finite(a.Shape) || a.Shape < 0 || a.Shape > 1e3 {
			return bad("arrival shape %v invalid", a.Shape)
		}
	}
	if d := g.Diurnal; d != nil {
		if d.PeriodEpochs <= 0 || d.PeriodEpochs > MaxEpochs {
			return bad("diurnal period_epochs %d invalid", d.PeriodEpochs)
		}
		if !finite(d.Amplitude) || d.Amplitude < 0 || d.Amplitude >= 1 {
			return bad("diurnal amplitude %v out of [0, 1)", d.Amplitude)
		}
	}
	if k := g.Skew; k != nil {
		if !finite(k.Exponent) || k.Exponent < 0 || k.Exponent > 20 {
			return bad("skew exponent %v invalid", k.Exponent)
		}
		if k.Keys < 0 || k.Keys > MaxSkewKeys {
			return bad("skew keys %d invalid", k.Keys)
		}
	}
	if g.JoinEpoch < 0 || g.JoinEpoch >= epochs {
		return bad("join_epoch %d out of [0, %d)", g.JoinEpoch, epochs)
	}
	if g.LeaveEpoch < 0 || (g.LeaveEpoch > 0 && g.LeaveEpoch <= g.JoinEpoch) {
		return bad("leave_epoch %d invalid", g.LeaveEpoch)
	}
	if c := g.Churn; c != nil {
		if c.PeriodEpochs <= 0 || c.PeriodEpochs > MaxEpochs {
			return bad("churn period_epochs %d invalid", c.PeriodEpochs)
		}
		if !finite(c.Fraction) || c.Fraction < 0 || c.Fraction > 1 {
			return bad("churn fraction %v out of [0, 1]", c.Fraction)
		}
	}
	return nil
}

func (f *Fault) validate(s *Spec, groups map[string]bool) error {
	if f.Epoch < 0 || f.Epoch >= s.Epochs {
		return bad("fault epoch %d out of [0, %d)", f.Epoch, s.Epochs)
	}
	switch f.Kind {
	case FaultSPCrash:
		if f.Query != "" {
			if _, ok := CanonicalQuery(f.Query); !ok {
				return bad("sp_crash targets unknown query %q", f.Query)
			}
		}
		if f.OutageEpochs < 0 || f.OutageEpochs > s.Epochs {
			return bad("outage_epochs %d invalid", f.OutageEpochs)
		}
	case FaultRateSpike:
		if f.Group != "" && !groups[f.Group] {
			return bad("rate_spike targets unknown group %q", f.Group)
		}
		if !finite(f.Factor) || f.Factor <= 0 || f.Factor > 1e3 {
			return bad("rate_spike factor %v invalid", f.Factor)
		}
		if f.UntilEpoch < 0 || (f.UntilEpoch > 0 && f.UntilEpoch <= f.Epoch) {
			return bad("until_epoch %d invalid", f.UntilEpoch)
		}
	default:
		return bad("unknown fault kind %q", f.Kind)
	}
	return nil
}
