package spec

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

const sampleSpec = `{
  "name": "mixed",
  "seed": 42,
  "epochs": 20,
  "epoch_millis": 1000,
  "sp": {"admit_rate_mbps": 50, "checkpoint_every": 4},
  "groups": [
    {"name": "gold-ping", "query": "s2s", "class": "gold", "nodes": 4, "rate_mbps": 0.5,
     "arrival": {"process": "gamma", "shape": 2},
     "diurnal": {"period_epochs": 10, "amplitude": 0.5},
     "skew": {"exponent": 1.1, "keys": 64}},
    {"name": "be-logs", "query": "log", "class": "best-effort", "nodes": 3, "rate_mbps": 0.8,
     "arrival": {"process": "poisson"},
     "churn": {"period_epochs": 5, "fraction": 0.4}},
    {"name": "spans", "query": "spans", "nodes": 2, "rate_mbps": 0.6,
     "join_epoch": 3, "leave_epoch": 15}
  ],
  "faults": [
    {"epoch": 6, "kind": "sp_crash", "query": "s2s", "outage_epochs": 2},
    {"epoch": 4, "kind": "rate_spike", "group": "be-logs", "factor": 3, "until_epoch": 8}
  ]
}`

func TestParseSampleSpec(t *testing.T) {
	s, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalNodes() != 9 {
		t.Fatalf("TotalNodes=%d, want 9", s.TotalNodes())
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Nodes) != 9 {
		t.Fatalf("compiled %d nodes", len(sc.Nodes))
	}
	if len(sc.Queries) != 3 || sc.Queries[0] != "s2s" || sc.Queries[1] != "log" || sc.Queries[2] != "spans" {
		t.Fatalf("queries %v", sc.Queries)
	}
	if sc.EpochMicros != 1_000_000 || sc.DrainEpochs != 11 {
		t.Fatalf("epochMicros=%d drain=%d", sc.EpochMicros, sc.DrainEpochs)
	}
	// Activity schedules: span nodes join at 3, leave at 15.
	span := sc.Nodes[7]
	if span.Query != "spans" || span.Active(2) || !span.Active(3) || span.Active(15) {
		t.Fatalf("span activity schedule wrong")
	}
	// Churn: over 20 epochs at fraction 0.4, a be-logs node should be
	// out during at least one period (deterministically).
	logNode := sc.Nodes[4]
	out := 0
	for e := 0; e < 20; e++ {
		if !logNode.Active(e) {
			out++
		}
	}
	if out == 0 || out == 20 {
		t.Fatalf("churned node inactive %d/20 epochs, want partial", out)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"empty":         ``,
		"not json":      `nonsense`,
		"no groups":     `{"epochs": 5, "groups": []}`,
		"zero epochs":   `{"epochs": 0, "groups": [{"name":"a","query":"s2s","nodes":1}]}`,
		"unknown field": `{"epochs": 5, "bogus": 1, "groups": [{"name":"a","query":"s2s","nodes":1}]}`,
		"unknown query": `{"epochs": 5, "groups": [{"name":"a","query":"wat","nodes":1}]}`,
		"zero nodes":    `{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":0}]}`,
		"zero rate is ok but negative is not": `{"epochs": 5,
			"groups": [{"name":"a","query":"s2s","nodes":1,"rate_mbps":-1}]}`,
		"bad class":   `{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1,"class":"platinum"}]}`,
		"bad arrival": `{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1,"arrival":{"process":"pareto"}}]}`,
		"amplitude 1": `{"epochs": 5,
			"groups": [{"name":"a","query":"s2s","nodes":1,"diurnal":{"period_epochs":2,"amplitude":1.0}}]}`,
		"dup group": `{"epochs": 5, "groups": [
			{"name":"a","query":"s2s","nodes":1},{"name":"a","query":"log","nodes":1}]}`,
		"fault unknown kind":  `{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1}], "faults":[{"epoch":1,"kind":"meteor"}]}`,
		"fault out of range":  `{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1}], "faults":[{"epoch":9,"kind":"sp_crash"}]}`,
		"spike bad group":     `{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1}], "faults":[{"epoch":1,"kind":"rate_spike","group":"zzz","factor":2}]}`,
		"spike zero factor":   `{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1}], "faults":[{"epoch":1,"kind":"rate_spike","factor":0}]}`,
		"leave before join":   `{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1,"join_epoch":3,"leave_epoch":2}]}`,
		"trailing data":       `{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1}]} extra`,
		"churn fraction >1":   `{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1,"churn":{"period_epochs":2,"fraction":1.5}}]}`,
		"skew exponent burst": `{"epochs": 5, "groups": [{"name":"a","query":"s2s","nodes":1,"skew":{"exponent":999}}]}`,
	}
	for name, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: parse accepted %q", name, doc)
		}
	}
}

func TestValidateNaN(t *testing.T) {
	s := &Spec{Epochs: 5, Groups: []Group{{Name: "a", Query: "s2s", Nodes: 1, RateMbps: math.NaN()}}}
	if err := s.Validate(); err == nil {
		t.Fatal("NaN rate accepted")
	}
	s = &Spec{Epochs: 5, Groups: []Group{{Name: "a", Query: "s2s", Nodes: 1,
		Diurnal: &Diurnal{PeriodEpochs: 2, Amplitude: math.Inf(1)}}}}
	if err := s.Validate(); err == nil {
		t.Fatal("Inf amplitude accepted")
	}
}

// TestCompileDeterministic pins the core guarantee: two compiles of the
// same spec produce generators emitting identical columns.
func TestCompileDeterministic(t *testing.T) {
	mk := func() *Scenario {
		s, err := Parse([]byte(sampleSpec))
		if err != nil {
			t.Fatal(err)
		}
		sc, err := s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	a, b := mk(), mk()
	for i := range a.Nodes {
		for e := 0; e < 3; e++ {
			if a.Nodes[i].Active(e) != b.Nodes[i].Active(e) {
				t.Fatalf("node %d epoch %d: activity differs", i, e)
			}
			var ca, cb wire.ColumnarBatch
			a.Nodes[i].EmitWindow(a.EpochMicros, &ca)
			b.Nodes[i].EmitWindow(b.EpochMicros, &cb)
			var ra, rb telemetry.Batch
			for si := range ca.Secs {
				ca.Secs[si].AppendRows(&ra)
			}
			for si := range cb.Secs {
				cb.Secs[si].AppendRows(&rb)
			}
			if len(ra) != len(rb) {
				t.Fatalf("node %d epoch %d: %d vs %d records", i, e, len(ra), len(rb))
			}
			for j := range ra {
				if fmt.Sprintf("%+v", ra[j].Data) != fmt.Sprintf("%+v", rb[j].Data) {
					t.Fatalf("node %d epoch %d record %d differs", i, e, j)
				}
			}
		}
	}
}

// TestArrivalSamplers checks the unit-mean property of each process.
func TestArrivalSamplers(t *testing.T) {
	for _, proc := range []string{"fixed", "poisson", "gamma", "weibull", "uniform"} {
		for _, shape := range []float64{0.5, 1, 3} {
			a := &Arrival{Process: proc, Shape: shape}
			rng := rand.New(rand.NewPCG(1, 2))
			sample := a.sampler(rng)
			sum := 0.0
			const n = 50000
			for i := 0; i < n; i++ {
				v := sample()
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s(%v): bad sample %v", proc, shape, v)
				}
				sum += v
			}
			if mean := sum / n; math.Abs(mean-1) > 0.05 {
				t.Fatalf("%s(%v): mean %v, want ≈1", proc, shape, mean)
			}
		}
	}
}

func TestDiurnalModulation(t *testing.T) {
	d := &Diurnal{PeriodEpochs: 10, Amplitude: 0.5}
	mod := d.modulator(1_000_000)
	if m := mod(0); math.Abs(m-1) > 1e-9 {
		t.Fatalf("mod(0)=%v", m)
	}
	if m := mod(2_500_000); math.Abs(m-1.5) > 1e-9 { // quarter period: peak
		t.Fatalf("mod(peak)=%v, want 1.5", m)
	}
	if m := mod(7_500_000); math.Abs(m-0.5) > 1e-9 { // trough
		t.Fatalf("mod(trough)=%v, want 0.5", m)
	}
}

func TestScaleNodes(t *testing.T) {
	s, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	s.ScaleNodes(100)
	if s.TotalNodes() != 100 {
		t.Fatalf("scaled total %d, want 100", s.TotalNodes())
	}
	for i := range s.Groups {
		if s.Groups[i].Nodes < 1 {
			t.Fatalf("group %d scaled to zero", i)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRateSpikeModulator(t *testing.T) {
	s, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	var logs *Group
	for i := range s.Groups {
		if s.Groups[i].Name == "be-logs" {
			logs = &s.Groups[i]
		}
	}
	mod := s.groupModulator(logs, 1_000_000)
	if m := mod(5_000_000); m < 2.9 { // spiked ×3 during [4,8)
		t.Fatalf("mod during spike = %v, want ≈3", m)
	}
	if m := mod(9_000_000); m > 1.1 {
		t.Fatalf("mod after spike = %v, want ≈1", m)
	}
}

func TestCanonicalQuery(t *testing.T) {
	for in, want := range map[string]string{
		"S2SProbe": "s2s", "t2t": "t2t", "LogAnalytics": "log", "TraceSpanAgg": "spans",
	} {
		got, ok := CanonicalQuery(in)
		if !ok || got != want {
			t.Fatalf("CanonicalQuery(%q) = %q, %v", in, got, ok)
		}
	}
	if _, ok := CanonicalQuery("nope"); ok {
		t.Fatal("accepted unknown query")
	}
}

func TestSpecStringsAreStrict(t *testing.T) {
	// Group name length bound guards metric label explosions.
	long := strings.Repeat("x", 200)
	s := &Spec{Epochs: 5, Groups: []Group{{Name: long, Query: "s2s", Nodes: 1}}}
	if err := s.Validate(); err == nil {
		t.Fatal("accepted 200-char group name")
	}
}
