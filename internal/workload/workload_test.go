package workload

import (
	"math"
	"strings"
	"testing"

	"jarvis/internal/telemetry"
)

func TestRecordsPerSecRoundTrip(t *testing.T) {
	rps := RecordsPerSec(26.2, 86)
	if math.Abs(MbpsOf(rps, 86)-26.2) > 1e-9 {
		t.Fatalf("round trip failed: %v", MbpsOf(rps, 86))
	}
	// 26.2 Mbps of 86 B records ≈ 38081 rec/s (paper's arithmetic).
	if math.Abs(rps-38081.4) > 1 {
		t.Fatalf("rps = %v, want ≈38081", rps)
	}
}

func TestPingGenDeterministic(t *testing.T) {
	cfg := DefaultPingConfig(7)
	a := NewPingGen(cfg).Next(100)
	b := NewPingGen(cfg).Next(100)
	for i := range a {
		pa, pb := a[i].Data.(*telemetry.PingProbe), b[i].Data.(*telemetry.PingProbe)
		if *pa != *pb {
			t.Fatalf("record %d differs: %+v vs %+v", i, pa, pb)
		}
	}
}

func TestPingGenErrRate(t *testing.T) {
	cfg := DefaultPingConfig(1)
	g := NewPingGen(cfg)
	const n = 50000
	batch := g.Next(n)
	errs := 0
	for _, r := range batch {
		if !r.Data.(*telemetry.PingProbe).OK() {
			errs++
		}
	}
	rate := float64(errs) / n
	if math.Abs(rate-0.14) > 0.01 {
		t.Fatalf("error rate = %v, want ≈0.14 (the paper's filter-out rate)", rate)
	}
}

func TestPingGenEventTimeMonotone(t *testing.T) {
	g := NewPingGen(DefaultPingConfig(3))
	batch := g.Next(1000)
	for i := 1; i < len(batch); i++ {
		if batch[i].Time <= batch[i-1].Time {
			t.Fatalf("time not increasing at %d", i)
		}
	}
	if batch[0].Data.(*telemetry.PingProbe).Timestamp != batch[0].Time {
		t.Fatal("record time must equal probe timestamp")
	}
}

func TestPingGenWireSizeAndRate(t *testing.T) {
	cfg := DefaultPingConfig(5)
	g := NewPingGen(cfg)
	dur := int64(1e6) // one second of event time
	batch := g.NextWindow(dur)
	mbps := float64(batch.TotalBytes()) * 8 / 1e6
	if math.Abs(mbps-PingmeshMbps10x) > 1.0 {
		t.Fatalf("generated %v Mbps, want ≈%v", mbps, PingmeshMbps10x)
	}
	for _, r := range batch {
		if r.WireSize != telemetry.PingProbeWireSize {
			t.Fatalf("wire size %d", r.WireSize)
		}
	}
}

func TestPingGenAnomalies(t *testing.T) {
	cfg := DefaultPingConfig(11)
	cfg.Peers = 5000
	cfg.AnomalousPairFrac = 0.02
	g := NewPingGen(cfg)
	got := float64(g.AnomalousCount()) / float64(cfg.Peers)
	if math.Abs(got-0.02) > 0.01 {
		t.Fatalf("anomalous frac = %v", got)
	}
	// Probe one full sweep: anomalous peers must mostly exceed the alert
	// threshold, healthy peers mostly not.
	batch := g.Next(cfg.Peers)
	var hiAnom, anom, hiHealthy, healthy int
	for i, r := range batch {
		p := r.Data.(*telemetry.PingProbe)
		if g.Anomalous(i) {
			anom++
			if p.RTTMicros > AlertThresholdMicros {
				hiAnom++
			}
		} else {
			healthy++
			if p.RTTMicros > AlertThresholdMicros {
				hiHealthy++
			}
		}
	}
	if anom == 0 {
		t.Fatal("no anomalous pairs sampled")
	}
	if frac := float64(hiAnom) / float64(anom); frac < 0.8 {
		t.Fatalf("only %v of anomalous probes exceed threshold", frac)
	}
	if frac := float64(hiHealthy) / float64(healthy); frac > 0.01 {
		t.Fatalf("%v of healthy probes exceed threshold", frac)
	}
}

func TestPingGenPeerRoundRobin(t *testing.T) {
	cfg := DefaultPingConfig(2)
	cfg.Peers = 10
	g := NewPingGen(cfg)
	batch := g.Next(20)
	for i, r := range batch {
		want := g.PeerIP(i % 10)
		if got := r.Data.(*telemetry.PingProbe).DstIP; got != want {
			t.Fatalf("probe %d dst = %x, want %x", i, got, want)
		}
	}
}

func TestSkewedNodeRates(t *testing.T) {
	rates := SkewedNodeRates(10000, 42)
	low := 0
	for _, r := range rates {
		if r <= 0 || r > 1 {
			t.Fatalf("rate %v out of range", r)
		}
		if r <= 0.5 {
			low++
		}
	}
	frac := float64(low) / float64(len(rates))
	if math.Abs(frac-0.58) > 0.03 {
		t.Fatalf("%v of nodes at ≤50%% of max rate, want ≈0.58", frac)
	}
	// Deterministic.
	again := SkewedNodeRates(10000, 42)
	for i := range rates {
		if rates[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestLogGenDeterministicAndRate(t *testing.T) {
	cfg := DefaultLogConfig(9)
	a := NewLogGen(cfg).Next(50)
	b := NewLogGen(cfg).Next(50)
	for i := range a {
		if a[i].Data.(*telemetry.LogLine).Raw != b[i].Data.(*telemetry.LogLine).Raw {
			t.Fatalf("line %d differs", i)
		}
	}
	g := NewLogGen(cfg)
	batch := g.NextWindow(1e6)
	mbps := float64(batch.TotalBytes()) * 8 / 1e6
	if math.Abs(mbps-LogMbps10x) > 6 {
		t.Fatalf("generated %v Mbps, want ≈%v", mbps, LogMbps10x)
	}
}

func TestLogGenMatchRateAndParse(t *testing.T) {
	cfg := DefaultLogConfig(4)
	cfg.MatchRate = 0.9
	g := NewLogGen(cfg)
	batch := g.Next(5000)
	matched := 0
	for _, r := range batch {
		line := strings.ToLower(strings.TrimSpace(r.Data.(*telemetry.LogLine).Raw))
		if MatchesPatterns(line) {
			matched++
			// Strip generator padding before parsing, like the query's
			// parse Map does via split.
			core := line
			if i := strings.Index(core, " #"); i >= 0 {
				core = core[:i]
			}
			stats, err := telemetry.ParseJobStats(r.Time, core)
			if err != nil {
				t.Fatalf("parse %q: %v", core, err)
			}
			if len(stats) != 3 {
				t.Fatalf("got %d stats from %q", len(stats), core)
			}
		}
	}
	rate := float64(matched) / float64(len(batch))
	if math.Abs(rate-0.9) > 0.02 {
		t.Fatalf("match rate %v, want ≈0.9", rate)
	}
}

func TestLogGenTenantsStable(t *testing.T) {
	g := NewLogGen(DefaultLogConfig(1))
	if len(g.Tenants()) != 64 {
		t.Fatalf("tenants = %d", len(g.Tenants()))
	}
}

func TestMatchesPatterns(t *testing.T) {
	if !MatchesPatterns("blah cpu util=5") {
		t.Fatal("should match cpu util")
	}
	if MatchesPatterns("kernel: link up") {
		t.Fatal("should not match chatter")
	}
}
