package workload

import "math"

// Zipf is a bounded Zipf(s) rank sampler over {0, …, n-1}: rank r is
// drawn with probability proportional to 1/(r+1)^s. math/rand/v2 does
// not carry rand.Zipf (unlike math/rand), so the hot-key skew the
// workload specs declare is sampled from a precomputed CDF instead —
// one uniform draw plus a binary search, deterministic from whatever
// RNG the caller feeds it, and cheap enough for per-record use.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the CDF for n ranks with exponent s. s == 0 is
// the uniform distribution; larger s concentrates mass on low ranks
// (s ≈ 1 is the classic web-object skew). n < 1 is clamped to 1.
func NewZipf(s float64, n int) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	inv := 1 / total
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding leaving the tail unreachable
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank maps a uniform draw u ∈ [0,1) to a rank by CDF inversion.
func (z *Zipf) Rank(u float64) int {
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
