// Package jarvis is the public API of the Jarvis reproduction: a
// decentralized, data-level query-partitioning engine for large-scale
// server monitoring (Sandur et al., ICDE 2022).
//
// A monitoring query is declared as an operator pipeline (see
// S2SProbe/T2TProbe/LogAnalytics for the paper's queries, or build your
// own with NewQuery). Each monitored server runs a Source — the query's
// local replica behind control proxies plus the Jarvis runtime that
// adapts load factors to the CPU the foreground services leave over. A
// Processor merges drained records and partial aggregates from many
// sources into exact query results.
//
// Quickstart:
//
//	src, gen, _ := jarvis.NewPingmeshSource(1, 0.6) // 60% of one core
//	proc, _ := jarvis.NewProcessor(src.Query())
//	proc.RegisterSource(1)
//	for epoch := 0; epoch < 30; epoch++ {
//	    res, _ := src.RunEpoch(gen.NextWindow(1_000_000))
//	    _ = proc.Consume(1, res)
//	    for _, row := range proc.Results() { fmt.Println(row.Data) }
//	}
package jarvis

import (
	"jarvis/internal/core"
	"jarvis/internal/operator"
	"jarvis/internal/plan"
	"jarvis/internal/runtime"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/topology"
	"jarvis/internal/workload"
)

// Core data model.
type (
	// Record is the unit of data flowing through pipelines.
	Record = telemetry.Record
	// Batch is a slice of records processed together.
	Batch = telemetry.Batch
	// AggRow is a mergeable aggregate row (count/sum/min/max/avg).
	AggRow = telemetry.AggRow
	// QuantileRow is a mergeable approximate-quantile sketch.
	QuantileRow = telemetry.QuantileRow
	// GroupKey identifies a group in GroupApply.
	GroupKey = telemetry.GroupKey
	// PingProbe is a Pingmesh latency probe record.
	PingProbe = telemetry.PingProbe
	// LogLine is a LogAnalytics text record.
	LogLine = telemetry.LogLine
)

// Query planning.
type (
	// Query is a declarative monitoring query.
	Query = plan.Query
	// OpSpec is one logical operator in a query.
	OpSpec = plan.OpSpec
)

// Query constructors.
var (
	// NewQuery starts a query builder.
	NewQuery = plan.NewQuery
	// S2SProbe is the paper's server-to-server latency query (Listing 1).
	S2SProbe = plan.S2SProbe
	// T2TProbe is the ToR-to-ToR latency query (Listing 2).
	T2TProbe = plan.T2TProbe
	// LogAnalytics is the per-tenant histogram query (Listing 3).
	LogAnalytics = plan.LogAnalytics
	// S2SQuantileProbe is the approximate-percentile variant of S2SProbe
	// (the mergeable aggregation class rule R-1 admits).
	S2SQuantileProbe = plan.S2SQuantileProbe
	// Optimize applies constant folding and predicate pushdown.
	Optimize = plan.Optimize
	// Explain renders a plan with its source-eligibility boundary.
	Explain = plan.Explain
	// SourceRules is the operator-eligibility rule set for data sources.
	SourceRules = plan.SourceRules
	// SPRules is the rule set for intermediate stream processors.
	SPRules = plan.SPRules
)

// Expression builders for optimizer-visible filter predicates.
var (
	// Fld references a record field by name (e.g. "errCode", "rtt").
	Fld = plan.Field
	// NumLit is a numeric literal.
	NumLit = plan.Num
	// StrLit is a string literal.
	StrLit = plan.Str
	// Eq compares for equality; And/Or/Not combine predicates.
	Eq  = plan.Eq
	And = plan.And
	Or  = plan.Or
	Not = plan.Not
)

// Key and value extractors for the built-in schemas.
var (
	// ProbePairKeyFn groups Pingmesh probes by (srcIP, dstIP).
	ProbePairKeyFn = operator.ProbePairKey
	// ProbeRTTFn extracts a probe's round-trip time in microseconds.
	ProbeRTTFn = operator.ProbeRTT
	// JobStatsKeyFn groups parsed log stats by (tenant, stat, bucket).
	JobStatsKeyFn = operator.JobStatsKey
)

// Deployable units.
type (
	// Source is a data-source agent: pipeline + control proxies + the
	// decentralized Jarvis runtime.
	Source = core.Source
	// SourceOptions configures a Source.
	SourceOptions = core.SourceOptions
	// Processor is the stream-processor side of a building block.
	Processor = core.Processor
	// BuildingBlock wires one Processor to n in-process Sources.
	BuildingBlock = core.BuildingBlock
	// Hierarchy is a multi-level tree of building blocks under a root SP
	// (Fig. 4(b)).
	Hierarchy = core.Hierarchy
	// MultiQueryNode runs several queries on one node with max-min fair
	// CPU sharing (§IV-E).
	MultiQueryNode = core.MultiQueryNode
	// EpochResult is one epoch's output from a Source.
	EpochResult = stream.EpochResult
	// RuntimeConfig tunes the adaptation algorithm.
	RuntimeConfig = runtime.Config
)

// Constructors for deployable units.
var (
	// NewSource compiles a query into a data-source agent.
	NewSource = core.NewSource
	// NewProcessor builds the SP-side replica of a query.
	NewProcessor = core.NewProcessor
	// NewBuildingBlock creates a processor plus n sources.
	NewBuildingBlock = core.NewBuildingBlock
	// NewHierarchy creates a tree of building blocks under a root SP.
	NewHierarchy = core.NewHierarchy
	// NewMultiQueryNode creates a fair-sharing multi-query node.
	NewMultiQueryNode = core.NewMultiQueryNode
	// NewPingmeshSource is the quickstart helper used in examples.
	NewPingmeshSource = core.NewPingmeshSource
)

// Topology and deployment (Fig. 4).
type (
	// Directory is the resource manager's node registry.
	Directory = topology.Directory
	// NodeInfo describes one node in the directory.
	NodeInfo = topology.NodeInfo
	// DeployedBlock is a runnable building block with its assignment.
	DeployedBlock = core.DeployedBlock
)

// Topology constructors and deployment.
var (
	// NewDirectory creates an empty resource directory.
	NewDirectory = topology.NewDirectory
	// StarTopology builds one root SP with n uniform sources.
	StarTopology = topology.StarTopology
	// Deploy instantiates building blocks from a directory (optimize →
	// rules → per-node assignment).
	Deploy = core.Deploy
)

// Runtime configurations (§VI-C's three variants).
var (
	// DefaultRuntime is full Jarvis: LP initialization plus fine-tuning.
	DefaultRuntime = runtime.Defaults
	// LPOnlyRuntime disables fine-tuning (model-based only).
	LPOnlyRuntime = runtime.LPOnly
	// NoLPInitRuntime disables LP initialization (model-agnostic only).
	NoLPInitRuntime = runtime.NoLPInit
)

// Workload generators for the paper's datasets.
var (
	// NewPingGen synthesizes Pingmesh probe streams.
	NewPingGen = workload.NewPingGen
	// DefaultPingConfig is the paper's Pingmesh setup at 10× scale.
	DefaultPingConfig = workload.DefaultPingConfig
	// NewLogGen synthesizes LogAnalytics text logs.
	NewLogGen = workload.NewLogGen
	// DefaultLogConfig is the paper's LogAnalytics setup at 10× scale.
	DefaultLogConfig = workload.DefaultLogConfig
)
