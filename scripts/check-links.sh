#!/bin/sh
# check-links.sh — verify that every relative markdown link in the
# repo's authored documentation (README.md, ROADMAP.md, CHANGES.md,
# docs/) points at a file or directory that exists. External http(s)
# and anchor-only links are skipped (the docs must stay correct offline
# and CI must not flake on third-party outages), and the verbatim paper
# extractions (PAPER*.md) are out of scope — they carry the source
# material's own figure references.
set -eu

fail=0
for md in README.md ROADMAP.md CHANGES.md docs/*.md; do
  [ -e "$md" ] || continue
  dir=$(dirname "$md")
  # Extract inline link targets ([text](target)), one per line so
  # whitespace inside a link cannot word-split the target.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    # Strip a trailing anchor (file.md#section).
    path=${target%%#*}
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "$md: broken link -> $target" >&2
      fail=1
    fi
  done <<EOF
$(grep -o '\[[^]]*\]([^)]*)' "$md" | sed 's/.*(\(.*\))$/\1/')
EOF
done
exit "$fail"
