#!/bin/sh
# check-pkgdoc.sh — fail if any package (internal/ and cmd/ included)
# lacks a godoc package comment: a comment block directly attached to
# the package clause of at least one non-test file. Run from the repo
# root; CI runs it next to `go vet`.
set -eu

fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
  ok=0
  for f in "$dir"/*.go; do
    [ -e "$f" ] || continue
    case "$f" in
      *_test.go) continue ;;
    esac
    # A package doc comment means the line immediately before
    # `package X` is a comment line (godoc attaches only adjacent
    # comments).
    if awk 'BEGIN{prev=""}
            /^package [A-Za-z_]/ { exit !(prev ~ /^\/\//) }
            {prev=$0}' "$f"; then
      ok=1
      break
    fi
  done
  if [ "$ok" = 0 ]; then
    echo "missing package doc comment: ${dir#"$(pwd)"/}" >&2
    fail=1
  fi
done

if [ "$fail" != 0 ]; then
  echo "add a package comment (doc.go or top of any file) to the packages above" >&2
fi
exit "$fail"
